"""Generic worklist dataflow solver plus the stock lattices.

:func:`solve` runs any :class:`DataflowAnalysis` (forward or backward)
over a :class:`~repro.staticcheck.cfg.CFG` to fixpoint.  Three stock
analyses cover what the flow passes need:

* :class:`Liveness` — backward may-analysis over variable names;
  powers dead-store detection.
* :class:`ReachingDefinitions` — forward may-analysis mapping names to
  the set of block indices whose store may reach a point.
* :class:`IntervalAnalysis` — forward must-analysis over an integer
  interval domain (:class:`IntRange`) with branch refinement, a small
  relational fact set (``x <= y`` pairs), float-evidence tracking and
  widening; powers the budget-range pass.

The solver is edge-sensitive: after computing a block's output state
the analysis may refine it per outgoing edge kind
(:meth:`DataflowAnalysis.refine`), which is how ``if words <= 0:``
narrows ``words`` to ``[1, +inf)`` on the false edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Mapping, TypeVar

from .cfg import CFG, Block, FALSE, TRUE

__all__ = [
    "DataflowAnalysis", "solve",
    "Liveness", "ReachingDefinitions",
    "IntRange", "IntervalState", "IntervalAnalysis",
    "loads_in", "simple_store_names", "closure_loads",
]

S = TypeVar("S")

#: Blocks are widened after this many visits (loops converge fast; the
#: cap only matters for the interval domain's infinite ascending chains).
WIDEN_AFTER = 8


class DataflowAnalysis(Generic[S]):
    """A lattice + transfer functions, consumed by :func:`solve`."""

    #: ``"forward"`` or ``"backward"``.
    direction = "forward"

    def boundary(self) -> S:
        """State at the entry (forward) / exits (backward)."""
        raise NotImplementedError

    def bottom(self) -> S:
        """Identity of :meth:`join` — the state of unvisited blocks."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, block: Block, state: S) -> S:
        raise NotImplementedError

    def refine(self, block: Block, state: S, kind: str) -> S:
        """Per-edge refinement of a block's output state (forward only)."""
        return state

    def widen(self, old: S, new: S) -> S:
        """Accelerate convergence once a block is visited repeatedly."""
        return self.join(old, new)

    def equal(self, a: S, b: S) -> bool:
        return a == b


def solve(cfg: CFG, analysis: DataflowAnalysis[S],
          ) -> tuple[dict[int, S], dict[int, S]]:
    """Run ``analysis`` over ``cfg`` to fixpoint.

    Returns ``(in_states, out_states)`` keyed by block index, oriented
    in *execution* order regardless of analysis direction (for a
    backward analysis ``in_states[b]`` is still the state *before* the
    block executes).
    """
    forward = analysis.direction == "forward"
    n = len(cfg.blocks)
    if forward:
        start = cfg.entry
        edges_in = cfg.preds      # states flow along these into a block
        edges_out = cfg.succs
    else:
        start = None              # every exit seeds the boundary
        edges_in = cfg.succs
        edges_out = cfg.preds

    before: dict[int, S] = {i: analysis.bottom() for i in range(n)}
    after: dict[int, S] = {i: analysis.bottom() for i in range(n)}
    visits = [0] * n

    worklist = list(range(n))
    if forward:
        before[start] = analysis.boundary()
    else:
        for index in (cfg.exit, cfg.raise_exit):
            before[index] = analysis.boundary()
    in_worklist = [True] * n

    while worklist:
        index = worklist.pop(0)
        in_worklist[index] = False
        block = cfg.blocks[index]

        incoming = analysis.bottom()
        seeded = (index == start) if forward else (
            index in (cfg.exit, cfg.raise_exit))
        if seeded:
            incoming = analysis.boundary()
        for src, kind in edges_in[index]:
            state = after[src]
            if forward:
                state = analysis.refine(cfg.blocks[src], state, kind)
            incoming = analysis.join(incoming, state)
        before[index] = incoming

        new_out = analysis.transfer(block, incoming)
        visits[index] += 1
        if visits[index] > WIDEN_AFTER:
            new_out = analysis.widen(after[index], new_out)
        if not analysis.equal(new_out, after[index]):
            after[index] = new_out
            for dst, _ in edges_out[index]:
                if not in_worklist[dst]:
                    in_worklist[dst] = True
                    worklist.append(dst)

    if forward:
        return before, after
    return after, before  # re-orient to execution order


# ---------------------------------------------------------------------------
# Name helpers shared by the analyses and the flow passes
# ---------------------------------------------------------------------------


def loads_in(node: ast.AST) -> set[str]:
    """Names loaded anywhere inside ``node`` (including nested defs —
    callers that need def-time-only semantics use :func:`closure_loads`
    to treat closure-read names as always live instead)."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            names.add(child.id)
        elif isinstance(child, ast.Attribute) and isinstance(
                child.ctx, (ast.Load, ast.Store, ast.Del)):
            # ``self.x += 1`` loads ``self`` whichever ctx the attribute has.
            for inner in ast.walk(child.value):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
    return names


def simple_store_names(node: ast.AST) -> list[str]:
    """Plain-``Name`` targets stored by a statement (no attributes or
    subscripts; tuple targets are flattened)."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        targets = [node.target]
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        targets = [item.optional_vars for item in node.items
                   if item.optional_vars is not None]
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        return [node.name]
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        return [(alias.asname or alias.name.split(".")[0])
                for alias in node.names]
    names: list[str] = []
    for target in targets:
        for child in ast.walk(target):
            if isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Store):
                names.append(child.id)
    # Walrus targets buried in expressions.
    for child in ast.walk(node):
        if isinstance(child, ast.NamedExpr):
            names.append(child.target.id)
    return names


def closure_loads(func: ast.AST) -> set[str]:
    """Names loaded inside *nested* functions/lambdas of ``func``.

    Closure cells are read at call time, not def time, so backward
    liveness cannot place the use — these names are treated as live
    everywhere by the dead-store check.
    """
    names: set[str] = set()

    def visit(node: ast.AST, inside_nested: bool) -> None:
        for child in ast.iter_child_nodes(node):
            nested = inside_nested or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            if inside_nested and isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Load):
                names.add(child.id)
            visit(child, nested)

    visit(func, False)
    return names


# ---------------------------------------------------------------------------
# Liveness (backward, may)
# ---------------------------------------------------------------------------


class Liveness(DataflowAnalysis[frozenset]):
    """Live variable names; ``in = (out - kills) | gens``."""

    direction = "backward"

    def boundary(self) -> frozenset:
        return frozenset()

    def bottom(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, block: Block, state: frozenset) -> frozenset:
        node = block.node
        if node is None:
            return state
        kills = frozenset(simple_store_names(node))
        gens = _gen_loads(block)
        return (state - kills) | gens


def _gen_loads(block: Block) -> frozenset:
    node = block.node
    if node is None:
        return frozenset()
    if isinstance(node, ast.Assign):
        used = loads_in(node.value)
        for target in node.targets:  # subscript/attribute bases are reads
            if not isinstance(target, ast.Name):
                used |= loads_in(target)
        return frozenset(used)
    if isinstance(node, ast.AnnAssign):
        return frozenset(loads_in(node.value) if node.value else set())
    if isinstance(node, ast.AugAssign):  # target is read *and* written
        return frozenset(loads_in(node.value) | loads_in(node.target)
                         | ({node.target.id}
                            if isinstance(node.target, ast.Name) else set()))
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return frozenset(loads_in(node.iter))
    if isinstance(node, (ast.With, ast.AsyncWith)):
        used: set[str] = set()
        for item in node.items:
            used |= loads_in(item.context_expr)
        return frozenset(used)
    if isinstance(node, ast.expr):  # test / case blocks
        return frozenset(loads_in(node))
    if isinstance(node, ast.ExceptHandler):
        return frozenset(loads_in(node.type) if node.type else set())
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # Decorators/defaults/annotations evaluate at def time; the
        # body's free names are handled by closure_loads.
        used = set()
        for expr in (node.decorator_list
                     + node.args.defaults + node.args.kw_defaults):
            if expr is not None:
                used |= loads_in(expr)
        return frozenset(used)
    return frozenset(loads_in(node))


# ---------------------------------------------------------------------------
# Reaching definitions (forward, may)
# ---------------------------------------------------------------------------


class ReachingDefinitions(DataflowAnalysis[Mapping]):
    """Map of name -> frozenset of block indices that may define it.

    ``params`` seeds the entry state (definition site ``-1``).
    """

    direction = "forward"

    def __init__(self, params: Iterable[str] = ()) -> None:
        self.params = tuple(params)

    def boundary(self) -> Mapping:
        return {name: frozenset([-1]) for name in self.params}

    def bottom(self) -> Mapping:
        return {}

    def join(self, a: Mapping, b: Mapping) -> Mapping:
        if not a:
            return dict(b)
        merged = dict(a)
        for name, sites in b.items():
            merged[name] = merged.get(name, frozenset()) | sites
        return merged

    def transfer(self, block: Block, state: Mapping) -> Mapping:
        node = block.node
        if node is None:
            return state
        stored = simple_store_names(node)
        if not stored:
            return state
        updated = dict(state)
        for name in stored:
            updated[name] = frozenset([block.index])
        return updated


# ---------------------------------------------------------------------------
# Integer interval domain (forward, must)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntRange:
    """``[lo, hi]`` over the integers; ``None`` bounds mean +/-inf.

    ``is_float`` records *evidence* that the value may be a float —
    the property the budget-range pass must prove absent from ledger
    cross-multiplications.
    """

    lo: int | None = None
    hi: int | None = None
    is_float: bool = False

    # -- constructors ----------------------------------------------------

    @staticmethod
    def const(value: int) -> "IntRange":
        return IntRange(value, value)

    @staticmethod
    def top() -> "IntRange":
        return IntRange(None, None)

    @staticmethod
    def float_top() -> "IntRange":
        return IntRange(None, None, is_float=True)

    # -- predicates ------------------------------------------------------

    def may_be_negative(self) -> bool:
        return self.lo is None or self.lo < 0

    def definitely_nonpositive(self) -> bool:
        return self.hi is not None and self.hi <= 0

    def is_empty(self) -> bool:
        return (self.lo is not None and self.hi is not None
                and self.lo > self.hi)

    # -- lattice ops ----------------------------------------------------

    def join(self, other: "IntRange") -> "IntRange":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        lo = (None if self.lo is None or other.lo is None
              else min(self.lo, other.lo))
        hi = (None if self.hi is None or other.hi is None
              else max(self.hi, other.hi))
        return IntRange(lo, hi, self.is_float or other.is_float)

    def meet(self, other: "IntRange") -> "IntRange":
        lo = (other.lo if self.lo is None
              else self.lo if other.lo is None
              else max(self.lo, other.lo))
        hi = (other.hi if self.hi is None
              else self.hi if other.hi is None
              else min(self.hi, other.hi))
        met = IntRange(lo, hi, self.is_float and other.is_float)
        # An empty meet means the path is infeasible; keep the refined
        # operand rather than inventing an impossible range.
        return other if met.is_empty() else met

    def widen_against(self, old: "IntRange") -> "IntRange":
        """Standard interval widening: a bound that moved since ``old``
        goes straight to its infinity, a stable bound is kept."""
        if old.is_empty():
            return self
        lo = (old.lo if old.lo is not None and self.lo is not None
              and self.lo >= old.lo else None)
        hi = (old.hi if old.hi is not None and self.hi is not None
              and self.hi <= old.hi else None)
        return IntRange(lo, hi, self.is_float or old.is_float)

    # -- arithmetic ------------------------------------------------------

    def _binary(self, other: "IntRange",
                op: Callable[[int, int], int]) -> "IntRange":
        corners = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if a is None or b is None:
                    return IntRange(None, None,
                                    self.is_float or other.is_float)
                corners.append(op(a, b))
        return IntRange(min(corners), max(corners),
                        self.is_float or other.is_float)

    def add(self, other: "IntRange") -> "IntRange":
        lo = (None if self.lo is None or other.lo is None
              else self.lo + other.lo)
        hi = (None if self.hi is None or other.hi is None
              else self.hi + other.hi)
        return IntRange(lo, hi, self.is_float or other.is_float)

    def sub(self, other: "IntRange") -> "IntRange":
        lo = (None if self.lo is None or other.hi is None
              else self.lo - other.hi)
        hi = (None if self.hi is None or other.lo is None
              else self.hi - other.lo)
        return IntRange(lo, hi, self.is_float or other.is_float)

    def mul(self, other: "IntRange") -> "IntRange":
        if None in (self.lo, self.hi, other.lo, other.hi):
            # Sign-aware unbounded case: nonneg * nonneg stays nonneg.
            if (self.lo is not None and self.lo >= 0
                    and other.lo is not None and other.lo >= 0):
                return IntRange(0, None, self.is_float or other.is_float)
            return IntRange(None, None, self.is_float or other.is_float)
        return self._binary(other, lambda a, b: a * b)

    def neg(self) -> "IntRange":
        return IntRange(None if self.hi is None else -self.hi,
                        None if self.lo is None else -self.lo,
                        self.is_float)


@dataclass(frozen=True)
class IntervalState:
    """Environment + relational facts at one program point.

    ``env`` maps trackable keys (local names and textual ``self.attr``
    spellings) to :class:`IntRange`; ``facts`` is a small must-hold set
    of ``(x, y)`` pairs meaning ``x <= y``.  ``reachable`` is False for
    states on infeasible paths (below everything in the lattice).
    """

    env: tuple = ()
    facts: frozenset = frozenset()
    reachable: bool = True

    def get(self, key: str) -> IntRange:
        for name, rng in self.env:
            if name == key:
                return rng
        return IntRange.top()

    def set(self, key: str, rng: IntRange,
            keep_facts: bool = False) -> "IntervalState":
        env = tuple((name, value) for name, value in self.env
                    if name != key) + ((key, rng),)
        facts = self.facts if keep_facts else frozenset(
            pair for pair in self.facts if key not in pair)
        return IntervalState(env, facts, self.reachable)

    def add_fact(self, low: str, high: str) -> "IntervalState":
        return IntervalState(self.env, self.facts | {(low, high)},
                             self.reachable)


class IntervalAnalysis(DataflowAnalysis[IntervalState]):
    """Forward interval analysis over one function body.

    ``param_ranges`` seeds parameter intervals (interprocedural
    summaries plug in here); ``call_summaries`` maps resolved callee
    qualnames to return ranges; ``validators`` maps callee qualnames to
    ``{param_position: IntRange}`` constraints that hold *after* a
    normal return (derived from ``if p <= 0: raise`` guards).
    ``attr_base`` tracks ``self.attr`` keys textually.
    """

    direction = "forward"

    def __init__(self,
                 param_ranges: Mapping | None = None,
                 call_summaries: Mapping | None = None,
                 validators: Mapping | None = None,
                 resolve: Callable[[ast.Call], str | None] | None = None,
                 ) -> None:
        self.param_ranges = dict(param_ranges or {})
        self.call_summaries = dict(call_summaries or {})
        self.validators = dict(validators or {})
        self.resolve = resolve or (lambda call: None)

    # -- lattice ----------------------------------------------------------

    def boundary(self) -> IntervalState:
        state = IntervalState()
        for name, rng in self.param_ranges.items():
            state = state.set(name, rng)
        return state

    def bottom(self) -> IntervalState:
        return IntervalState(reachable=False)

    def join(self, a: IntervalState, b: IntervalState) -> IntervalState:
        if not a.reachable:
            return b
        if not b.reachable:
            return a
        env_a, env_b = dict(a.env), dict(b.env)
        merged = tuple(
            (key, env_a[key].join(env_b[key]))
            for key in sorted(env_a.keys() & env_b.keys()))
        return IntervalState(merged, a.facts & b.facts, True)

    def widen(self, old: IntervalState,
              new: IntervalState) -> IntervalState:
        if not old.reachable or not new.reachable:
            return new if new.reachable else old
        old_env = dict(old.env)
        widened = tuple(
            (key, rng.widen_against(old_env[key]) if key in old_env else rng)
        for key, rng in new.env)
        return IntervalState(widened, new.facts & old.facts, True)

    # -- expression evaluation ---------------------------------------------

    def key_of(self, expr: ast.expr) -> str | None:
        """The trackable key of an expression, if any."""
        if isinstance(expr, ast.Name):
            return expr.id
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)):
            return f"{expr.value.id}.{expr.attr}"
        return None

    def eval(self, expr: ast.expr, state: IntervalState) -> IntRange:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool):
                return IntRange(int(expr.value), int(expr.value))
            if isinstance(expr.value, int):
                return IntRange.const(expr.value)
            if isinstance(expr.value, float):
                return IntRange.float_top()
            return IntRange.top()
        key = self.key_of(expr)
        if key is not None:
            return state.get(key)
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            return self.eval(expr.operand, state).neg()
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, state)
            right = self.eval(expr.right, state)
            if isinstance(expr.op, ast.Add):
                return left.add(right)
            if isinstance(expr.op, ast.Sub):
                return left.sub(right)
            if isinstance(expr.op, ast.Mult):
                return left.mul(right)
            if isinstance(expr.op, ast.Div):
                return IntRange.float_top()  # true division is float
            if isinstance(expr.op, ast.FloorDiv):
                if (left.lo is not None and left.lo >= 0
                        and right.lo is not None and right.lo >= 1):
                    return IntRange(0, left.hi,
                                    left.is_float or right.is_float)
                return IntRange(None, None, left.is_float or right.is_float)
            if isinstance(expr.op, ast.Mod):
                if right.lo is not None and right.lo >= 1:
                    hi = None if right.hi is None else right.hi - 1
                    return IntRange(0, hi, left.is_float or right.is_float)
                return IntRange(None, None, left.is_float or right.is_float)
            if isinstance(expr.op, ast.Pow):
                return IntRange(None, None, left.is_float or right.is_float)
            return IntRange.top()
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.IfExp):
            return self.eval(expr.body, state).join(
                self.eval(expr.orelse, state))
        return IntRange.top()

    def _eval_call(self, call: ast.Call, state: IntervalState) -> IntRange:
        func = call.func
        if isinstance(func, ast.Name) and not call.keywords:
            args = [self.eval(arg, state) for arg in call.args]
            if func.id == "len":
                return IntRange(0, None)
            if func.id == "abs" and len(args) == 1:
                inner = args[0]
                hi = (None if inner.lo is None or inner.hi is None
                      else max(abs(inner.lo), abs(inner.hi)))
                return IntRange(0, hi, inner.is_float)
            if func.id == "max" and args:
                lo = None
                for arg in args:
                    if arg.lo is not None:
                        lo = arg.lo if lo is None else max(lo, arg.lo)
                his = [arg.hi for arg in args]
                hi = None if any(h is None for h in his) else max(his)
                return IntRange(lo, hi, any(a.is_float for a in args))
            if func.id == "min" and args:
                hi = None
                for arg in args:
                    if arg.hi is not None:
                        hi = arg.hi if hi is None else min(hi, arg.hi)
                los = [arg.lo for arg in args]
                lo = None if any(l is None for l in los) else min(los)
                return IntRange(lo, hi, any(a.is_float for a in args))
            if func.id == "int":
                return IntRange.top()
            if func.id == "float":
                return IntRange.float_top()
        qualname = self.resolve(call)
        if qualname is not None and qualname in self.call_summaries:
            return self.call_summaries[qualname]
        return IntRange.top()

    # -- transfer -----------------------------------------------------------

    def transfer(self, block: Block,
                 state: IntervalState) -> IntervalState:
        if not state.reachable:
            return state
        node = block.node
        if node is None:
            return state
        state = self._apply_validators(node, state)
        if isinstance(node, ast.Assign):
            value = self.eval(node.value, state)
            if (len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Tuple)
                    and isinstance(node.value, ast.Tuple)
                    and len(node.targets[0].elts)
                    == len(node.value.elts)):
                for target, elt in zip(node.targets[0].elts,
                                       node.value.elts):
                    key = self.key_of(target)
                    if key is not None:
                        state = state.set(key, self.eval(elt, state))
                return state
            for target in node.targets:
                key = self.key_of(target)
                if key is not None:
                    state = state.set(key, value)
                    source_key = self.key_of(node.value)
                    if source_key is not None:  # x = y  =>  x <= y <= x
                        state = state.add_fact(key, source_key)
                        state = state.add_fact(source_key, key)
            return state
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            key = self.key_of(node.target)
            if key is not None:
                state = state.set(key, self.eval(node.value, state))
            return state
        if isinstance(node, ast.AugAssign):
            key = self.key_of(node.target)
            if key is not None:
                synthetic = ast.BinOp(left=node.target, op=node.op,
                                      right=node.value)
                state = state.set(key, self.eval(synthetic, state))
            return state
        if isinstance(node, (ast.For, ast.AsyncFor)):
            key = self.key_of(node.target)
            if key is not None:
                state = state.set(key, IntRange.top())
            return state
        return state

    def _apply_validators(self, node: ast.AST,
                          state: IntervalState) -> IntervalState:
        """Refine args after calls whose callee validates its params."""
        if not self.validators:
            return state
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            qualname = self.resolve(call)
            if qualname is None:
                continue
            constraints = self.validators.get(qualname)
            if not constraints:
                continue
            for position, required in constraints.items():
                if position >= len(call.args):
                    continue
                key = self.key_of(call.args[position])
                if key is not None:
                    state = state.set(
                        key, state.get(key).meet(required), keep_facts=True)
        return state

    # -- branch refinement -----------------------------------------------

    def refine(self, block: Block, state: IntervalState,
               kind: str) -> IntervalState:
        if not state.reachable or block.node is None:
            return state
        if kind not in (TRUE, FALSE) or not isinstance(block.node, ast.expr):
            return state
        return self._refine_test(block.node, state, kind == TRUE)

    def _refine_test(self, test: ast.expr, state: IntervalState,
                     taken: bool) -> IntervalState:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine_test(test.operand, state, not taken)
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And) and taken:
                for clause in test.values:  # all clauses hold
                    state = self._refine_test(clause, state, True)
            elif isinstance(test.op, ast.Or) and not taken:
                for clause in test.values:  # all clauses failed
                    state = self._refine_test(clause, state, False)
            return state
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return state
        left, right = test.left, test.comparators[0]
        op = test.ops[0]
        if not taken:
            op = _NEGATED.get(type(op))
            if op is None:
                return state
            op = op()
        return self._refine_compare(left, op, right, state)

    def _refine_compare(self, left: ast.expr, op: ast.cmpop,
                        right: ast.expr,
                        state: IntervalState) -> IntervalState:
        lkey, rkey = self.key_of(left), self.key_of(right)
        lval = self.eval(left, state)
        rval = self.eval(right, state)

        def clamp_hi(rng: IntRange, bound: int | None) -> IntRange:
            return rng if bound is None else rng.meet(IntRange(None, bound))

        def clamp_lo(rng: IntRange, bound: int | None) -> IntRange:
            return rng if bound is None else rng.meet(IntRange(bound, None))

        if isinstance(op, ast.Lt):      # left < right
            if lkey:
                state = state.set(lkey, clamp_hi(
                    lval, None if rval.hi is None else rval.hi - 1),
                    keep_facts=True)
            if rkey:
                state = state.set(rkey, clamp_lo(
                    rval, None if lval.lo is None else lval.lo + 1),
                    keep_facts=True)
            if lkey and rkey:
                state = state.add_fact(lkey, rkey)
        elif isinstance(op, ast.LtE):   # left <= right
            if lkey:
                state = state.set(lkey, clamp_hi(lval, rval.hi),
                                  keep_facts=True)
            if rkey:
                state = state.set(rkey, clamp_lo(rval, lval.lo),
                                  keep_facts=True)
            if lkey and rkey:
                state = state.add_fact(lkey, rkey)
        elif isinstance(op, ast.Gt):    # left > right
            return self._refine_compare(right, ast.Lt(), left, state)
        elif isinstance(op, ast.GtE):   # left >= right
            return self._refine_compare(right, ast.LtE(), left, state)
        elif isinstance(op, ast.Eq):
            met = lval.meet(rval)
            if lkey:
                state = state.set(lkey, met, keep_facts=True)
            if rkey:
                state = state.set(rkey, met, keep_facts=True)
            if lkey and rkey:
                state = state.add_fact(lkey, rkey)
                state = state.add_fact(rkey, lkey)
        elif isinstance(op, ast.NotEq):
            # Only the boundary-exclusion cases are useful: x != 0 with
            # x in [0, hi] tightens to [1, hi].
            if lkey and rval.lo is not None and rval.lo == rval.hi:
                state = state.set(lkey, _exclude(lval, rval.lo),
                                  keep_facts=True)
            if rkey and lval.lo is not None and lval.lo == lval.hi:
                state = state.set(rkey, _exclude(rval, lval.lo),
                                  keep_facts=True)
        return state


_NEGATED = {
    ast.Lt: ast.GtE, ast.LtE: ast.Gt,
    ast.Gt: ast.LtE, ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq, ast.NotEq: ast.Eq,
}


def _exclude(rng: IntRange, value: int) -> IntRange:
    if rng.lo == value:
        return IntRange(value + 1, rng.hi, rng.is_float)
    if rng.hi == value:
        return IntRange(rng.lo, value - 1, rng.is_float)
    return rng
