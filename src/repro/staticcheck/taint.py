"""Interprocedural float-taint analysis into budget-critical sinks.

Theorem 1's bound is exact-arithmetic-tight: a single ULP of float
drift flips ``can_move`` at the budget boundary (the regression tests in
``tests/mm/test_budget.py`` construct exact such points).  The
per-module ``no-float`` rule catches float *syntax* inside the
budget-critical files, but it cannot see a float produced in one
function and consumed in budget code two calls away.  This pass can:

1. **Summaries.** For every function in the program, compute whether
   its return value is float-tainted: a return expression is tainted if
   it contains a float literal, true division, ``float(...)``, a
   ``math.*``/``time.*`` call (minus the integer-returning exceptions),
   a parameter annotated ``float``, or a call to a function whose
   summary is already tainted.  Local variables propagate taint through
   assignments.  Summaries iterate to a fixpoint over the call graph,
   so taint flows through arbitrarily long helper chains.
2. **Sink checks.** Inside the budget-critical scope
   (``src/repro/exact/``, ``mm/budget.py``, ``check/budget_replay.py``):

   * ``float-taint`` — a call whose resolved callee returns a tainted
     value (the taint path is spelled out hop by hop in the message);
   * ``float-taint-arg`` — *anywhere* in the program, a tainted
     argument passed into a budget-critical function whose matching
     parameter is **not** annotated as float-accepting.  Parameters
     annotated ``float`` (e.g. the compaction divisor ``c``, which the
     ledger immediately converts with ``as_integer_ratio``) are declared
     boundaries and exempt: the sink module's own ``no-float``
     discipline governs what happens after the boundary.

``# lint: float-ok`` pragmas suppress both rules statement-wide —
including on multi-line statements — and also stop taint at the source:
a function whose only float production is pragma-exempted (a
display-layer conversion) has a clean summary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Finding, StaticCheckConfig, program_pass
from .callgraph import CallGraph, CallSite, build_call_graph
from .model import FunctionInfo, ModuleInfo, Program

__all__ = [
    "FloatTaintAnalysis",
    "run_float_taint",
    "MATH_INT_RETURNING",
    "NUMPY_FLOAT_PRODUCING",
    "NUMPY_INT_PRODUCING",
]

#: ``math`` members that return integers (not taint sources).
MATH_INT_RETURNING = frozenset({
    "ceil", "floor", "gcd", "lcm", "isqrt", "factorial", "comb", "perm",
    "trunc",
})

#: The typed boundary for numpy values flowing toward budget-critical
#: code.  Numpy *integer* scalars compare exactly against Python ints
#: (both sides are integers below 2**63), so the bitmap kernel may hand
#: e.g. an ``np.int64`` popcount to the ledger without breaking
#: Theorem 1's exactness.  Anything float-typed must still be flagged —
#: an ``np.float64`` carries the same ULP hazard as a Python float.
NUMPY_FLOAT_PRODUCING = frozenset({
    "float16", "float32", "float64", "float128", "floating", "double",
    "half", "single", "longdouble",
    "mean", "average", "median", "std", "var", "percentile", "quantile",
    "true_divide", "divide", "sqrt", "cbrt", "exp", "expm1",
    "log", "log1p", "log2", "log10", "sin", "cos", "tan", "interp",
    "linspace", "rad2deg", "deg2rad", "hypot",
})

#: Known integer-scalar producers, declared clean at the boundary.
NUMPY_INT_PRODUCING = frozenset({
    "int8", "int16", "int32", "int64", "intp", "int_",
    "uint8", "uint16", "uint32", "uint64", "uintp", "uint",
    "bitwise_count", "count_nonzero", "argmin", "argmax",
    "searchsorted", "packbits", "ndim", "size",
})

#: Annotation substrings that declare a parameter float-accepting.
_FLOAT_ACCEPTING_MARKERS = ("float", "Fraction", "Any", "object")


def _annotation_accepts_float(annotation: str | None) -> bool:
    if annotation is None:
        return False
    return any(marker in annotation for marker in _FLOAT_ACCEPTING_MARKERS)


def _is_external_float_source(dotted: str) -> bool:
    """Whether an out-of-program callee is a float producer."""
    if dotted.startswith("math."):
        return dotted.split(".", 1)[1] not in MATH_INT_RETURNING
    if dotted.startswith("time."):
        return not dotted.endswith("_ns")
    if dotted.startswith("numpy."):
        member = dotted.split(".")[-1]
        if member in NUMPY_INT_PRODUCING:
            return False
        return member in NUMPY_FLOAT_PRODUCING
    return False


class FloatTaintAnalysis:
    """Function summaries + the sink walk, shared with the fixtures."""

    def __init__(self, program: Program, config: StaticCheckConfig,
                 graph: CallGraph | None = None) -> None:
        self.program = program
        self.config = config
        self.graph = graph if graph is not None else build_call_graph(program)
        #: qualname -> True when the function's return value is tainted.
        self.tainted: dict[str, bool] = {}
        #: qualname -> human-readable reason, for taint-path messages.
        self.reasons: dict[str, str] = {}
        #: qualname -> next hop (callee) the taint came through, if any.
        self.via: dict[str, str | None] = {}
        self._compute_summaries()

    # -- expression-level taint ----------------------------------------------

    def _call_taint(self, module: ModuleInfo, node: ast.Call,
                    owner_class: str | None) -> tuple[bool, str | None]:
        """(tainted, callee) for one call expression."""
        if (isinstance(node.func, ast.Name) and node.func.id == "float"):
            return True, "float()"
        callee = self.program.resolve_call(module, node,
                                           owner_class=owner_class)
        if callee is None:
            return False, None
        if callee in self.program.functions:
            return bool(self.tainted.get(callee)), callee
        if callee in self.program.classes:
            return False, callee  # constructing an object is not a float
        return _is_external_float_source(callee), callee

    def expr_taint(self, module: ModuleInfo, node: ast.expr | None,
                   env: dict[str, bool], exempt: set[int],
                   owner_class: str | None = None) -> bool:
        """Whether an expression's value is float-tainted."""
        if node is None:
            return False
        line = getattr(node, "lineno", 0)
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float) and line not in exempt
        if isinstance(node, ast.Name):
            return env.get(node.id, False)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div) and line not in exempt:
                return True
            return (self.expr_taint(module, node.left, env, exempt,
                                    owner_class)
                    or self.expr_taint(module, node.right, env, exempt,
                                       owner_class))
        if isinstance(node, ast.UnaryOp):
            return self.expr_taint(module, node.operand, env, exempt,
                                   owner_class)
        if isinstance(node, ast.BoolOp):
            return any(self.expr_taint(module, value, env, exempt,
                                       owner_class)
                       for value in node.values)
        if isinstance(node, ast.IfExp):
            return (self.expr_taint(module, node.body, env, exempt,
                                    owner_class)
                    or self.expr_taint(module, node.orelse, env, exempt,
                                       owner_class))
        if isinstance(node, ast.Call):
            if line in exempt:
                return False
            tainted, _ = self._call_taint(module, node, owner_class)
            return tainted
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_taint(module, elt, env, exempt, owner_class)
                       for elt in node.elts)
        if isinstance(node, ast.Subscript):
            return self.expr_taint(module, node.value, env, exempt,
                                   owner_class)
        if isinstance(node, ast.Starred):
            return self.expr_taint(module, node.value, env, exempt,
                                   owner_class)
        if isinstance(node, ast.NamedExpr):
            return self.expr_taint(module, node.value, env, exempt,
                                   owner_class)
        # Attribute access (properties), comparisons, f-strings,
        # comprehensions: not treated as taint carriers.
        return False

    # -- function summaries --------------------------------------------------

    def _initial_env(self, function: FunctionInfo) -> dict[str, bool]:
        env: dict[str, bool] = {}
        for param in function.params:
            annotation = function.annotations.get(param)
            if annotation is not None and "float" in annotation:
                env[param] = True
        return env

    def _summarize(self, function: FunctionInfo) -> tuple[bool, str, str | None]:
        """(tainted, reason, via-callee) for one function's return value."""
        module = self.program.modules[function.module]
        exempt = module.float_ok_lines
        env = self._initial_env(function)
        result: list[tuple[bool, str, str | None]] = [(False, "", None)]

        def scan_stmt(stmt: ast.stmt) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                return
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
                tainted = self.expr_taint(module, value, env, exempt,
                                          function.owner_class)
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        if isinstance(stmt, ast.AugAssign):
                            env[target.id] = env.get(target.id, False) or tainted
                        else:
                            env[target.id] = tainted
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                env[elt.id] = tainted
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if self.expr_taint(module, stmt.value, env, exempt,
                                   function.owner_class):
                    reason, via = self._return_reason(module, stmt.value, env,
                                                     exempt,
                                                     function.owner_class)
                    result[0] = (True, reason, via)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    scan_stmt(child)
                elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                    for grandchild in ast.iter_child_nodes(child):
                        if isinstance(grandchild, ast.stmt):
                            scan_stmt(grandchild)

        if function.is_module_body:
            return False, "", None
        # Two passes over the body so a taint assigned below a loop's
        # first read still converges (cheap alternative to per-function
        # fixpoints; the repo has no taint-through-loop-carried cases).
        for _ in range(2):
            for stmt in function.body:
                scan_stmt(stmt)
        return result[0]

    def _return_reason(self, module: ModuleInfo, node: ast.expr,
                       env: dict[str, bool], exempt: set[int],
                       owner_class: str | None) -> tuple[str, str | None]:
        """A short provenance string for a tainted return expression."""
        for sub in ast.walk(node):
            line = getattr(sub, "lineno", 0)
            if (isinstance(sub, ast.Constant)
                    and isinstance(sub.value, float) and line not in exempt):
                return f"float literal {sub.value!r}", None
            if (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
                    and line not in exempt):
                return "true division `/`", None
            if isinstance(sub, ast.Call) and line not in exempt:
                tainted, callee = self._call_taint(module, sub, owner_class)
                if tainted and callee is not None:
                    return f"call to {callee}", callee
        tainted_names = sorted(
            sub.id for sub in ast.walk(node)
            if isinstance(sub, ast.Name) and env.get(sub.id)
        )
        if tainted_names:
            return f"tainted local {tainted_names[0]!r}", None
        return "tainted expression", None

    def _compute_summaries(self) -> None:
        for qualname in self.program.functions:
            self.tainted[qualname] = False
        for _ in range(20):
            changed = False
            for qualname, function in self.program.functions.items():
                tainted, reason, via = self._summarize(function)
                if tainted and not self.tainted[qualname]:
                    self.tainted[qualname] = True
                    self.reasons[qualname] = reason
                    self.via[qualname] = via
                    changed = True
            if not changed:
                break

    def taint_path(self, qualname: str, limit: int = 6) -> str:
        """``f <- g <- h (float literal 0.5)`` provenance chain."""
        hops = [qualname]
        current: str | None = qualname
        while current is not None and len(hops) <= limit:
            nxt = self.via.get(current)
            if nxt is None or nxt in hops:
                break
            hops.append(nxt)
            current = nxt
        origin = self.reasons.get(hops[-1], "")
        chain = " <- ".join(hops)
        return f"{chain} ({origin})" if origin else chain

    # -- sink checks ---------------------------------------------------------

    def sink_findings(self) -> Iterator[Finding]:
        """Both sink rules over the whole program."""
        for function in self.program.functions.values():
            module = self.program.modules[function.module]
            in_sink = self.config.is_float_sink(module.relpath)
            exempt = module.float_ok_lines
            env = self._local_env(function)
            for site in self.graph.sites.get(function.qualname, ()):
                if site.callee is None:
                    continue
                if in_sink:
                    yield from self._check_tainted_return(
                        function, module, site, exempt)
                yield from self._check_tainted_args(
                    function, module, site, env, exempt)

    def _local_env(self, function: FunctionInfo) -> dict[str, bool]:
        """Local taint environment after simulating the body once."""
        module = self.program.modules[function.module]
        exempt = module.float_ok_lines
        env = self._initial_env(function)
        if function.is_module_body:
            body = [stmt for stmt in function.body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
        else:
            body = list(function.body)
        for _ in range(2):
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef)):
                        continue
                    if isinstance(node, (ast.Assign, ast.AnnAssign)):
                        tainted = self.expr_taint(
                            module, node.value, env, exempt,
                            function.owner_class)
                        targets = (node.targets
                                   if isinstance(node, ast.Assign)
                                   else [node.target])
                        for target in targets:
                            if isinstance(target, ast.Name):
                                env[target.id] = tainted
        return env

    def _check_tainted_return(self, function: FunctionInfo,
                              module: ModuleInfo, site: CallSite,
                              exempt: set[int]) -> Iterator[Finding]:
        callee = site.callee
        assert callee is not None
        if callee in self.program.functions:
            if not self.tainted.get(callee):
                return
            detail = self.taint_path(callee)
        elif _is_external_float_source(callee):
            detail = f"{callee} returns a float"
        else:
            return
        if set(_stmt_lines(site.node)) & exempt or site.line in exempt:
            return
        yield Finding(
            module.path, site.line, "float-taint",
            f"budget-critical code receives a float-tainted value: "
            f"{detail}; use exact integer or Fraction arithmetic "
            "(or a `# lint: float-ok` pragma for display-only values)",
            symbol=function.qualname,
            source="float-taint",
        )

    def _check_tainted_args(self, function: FunctionInfo,
                            module: ModuleInfo, site: CallSite,
                            env: dict[str, bool],
                            exempt: set[int]) -> Iterator[Finding]:
        callee = site.callee
        assert callee is not None
        params: tuple[str, ...]
        annotations: dict[str, str]
        if callee in self.program.functions:
            target = self.program.functions[callee]
            target_module = self.program.modules[target.module]
            if not self.config.is_float_sink(target_module.relpath):
                return
            params = target.params
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            annotations = target.annotations
        elif callee in self.program.classes:
            info = self.program.classes[callee]
            target_module = self.program.modules[info.module]
            if not self.config.is_float_sink(target_module.relpath):
                return
            resolved = self.program.init_params_of(callee)
            if resolved is None:
                return
            params, annotations = resolved
        else:
            return
        if site.line in exempt:
            return
        call = site.node
        bound: list[tuple[str | None, ast.expr]] = []
        for position, arg in enumerate(call.args):
            name = params[position] if position < len(params) else None
            bound.append((name, arg))
        for keyword in call.keywords:
            if keyword.arg is not None:
                bound.append((keyword.arg, keyword.value))
        for name, arg in bound:
            if _annotation_accepts_float(
                    annotations.get(name) if name else None):
                continue
            if not self.expr_taint(module, arg, env, exempt,
                                   function.owner_class):
                continue
            label = f"parameter {name!r}" if name else "a parameter"
            yield Finding(
                module.path, site.line, "float-taint-arg",
                f"float-tainted argument flows into budget-critical "
                f"{callee} ({label} is not declared float-accepting); "
                "budget arithmetic must stay exact",
                symbol=function.qualname,
                source="float-taint",
            )


def _stmt_lines(node: ast.AST) -> range:
    start = getattr(node, "lineno", 0)
    end = getattr(node, "end_lineno", start) or start
    return range(start, end + 1)


@program_pass(
    "float-taint",
    "interprocedural float taint must not reach budget-critical code "
    "(Theorem 1 is ULP-tight at the budget boundary)",
    rule_ids=("float-taint", "float-taint-arg"),
)
def run_float_taint(program: Program,
                    config: StaticCheckConfig) -> Iterator[Finding]:
    """The registered pass entry point."""
    analysis = FloatTaintAnalysis(program, config)
    yield from analysis.sink_findings()
