"""Budget-range pass: interval proofs over the compaction ledger.

The paper's bounds assume the c-partial ledger
(:mod:`repro.mm.budget`) is exact-integer and never goes negative.
PR 5's lexical ``no-float`` rule catches float *syntax* in the budget
files; this pass proves the two semantic properties across control
flow, using the interval domain of
:mod:`repro.staticcheck.dataflow`:

* **budget-negative** — every assignment/augmented-assignment to a
  ledger counter (``self._allocated``, ``self._moved``; see
  :attr:`~repro.staticcheck.base.StaticCheckConfig.budget_counter_attrs`)
  must have a provably non-negative right-hand side.  Counters are
  seeded ``[0, +inf)`` at function entry (the inductive hypothesis);
  guards like ``if words <= 0: raise`` refine the increment to
  ``[1, +inf)`` on the surviving path, which is exactly how
  ``charge_move`` proves clean.
* **budget-int** — no operand of a ``*`` cross-multiplication (and no
  value stored into a counter) may carry float evidence.  The
  enforcement comparisons ``moved * num <= allocated * den`` are
  ULP-tight at the boundary; one float operand silently re-introduces
  the rounding the exact form exists to avoid.  ``# lint: float-ok``
  exempts display-only lines, same as the lexical rule.
* **budget-call** — *interprocedural*: every budget-file function gets
  a validator summary ("on normal return, ``words >= 1``", derived
  from its raising guards) and callers anywhere in the program are
  checked against it — an argument whose interval is provably
  non-positive can only raise at runtime.

Summaries iterate to a fixpoint (validator facts of ``can_move``
participate in proving ``charge_move``), mirroring the float-taint
pass's summary loop.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from .base import (FLOAT_OK_PRAGMA, Finding, StaticCheckConfig,
                   program_pass)
from .cfg import CFG, build_cfg
from .dataflow import IntervalAnalysis, IntervalState, IntRange, solve
from .model import FunctionInfo, ModuleInfo, Program

__all__ = [
    "check_budget_range",
    "BudgetRangeAnalysis",
    "SUMMARY_ROUNDS",
]

#: Fixpoint rounds for validator/return summaries.  The call depth among
#: budget functions is tiny (charge_move -> can_move); two rounds reach
#: the fixpoint, the third is the safety margin.
SUMMARY_ROUNDS = 3


class _BudgetIntervals(IntervalAnalysis):
    """Interval analysis with name-based validator application.

    The generic :class:`IntervalAnalysis` keys validators by argument
    *position*; methods need the bound-``self`` offset handled, so this
    subclass maps call arguments onto the callee's parameter names.
    """

    def __init__(self, analysis: "BudgetRangeAnalysis",
                 function: FunctionInfo, module: ModuleInfo,
                 param_ranges: Mapping | None = None) -> None:
        super().__init__(param_ranges=param_ranges)
        self._analysis = analysis
        self._function = function
        self._module = module
        # The base class stores ``resolve`` as an instance attribute;
        # rebind it so eval()'s call handling sees the program resolver.
        self.resolve = self._resolve_key

    def _resolve_key(self, call: ast.Call) -> str | None:
        return self._analysis.summary_key(self._module, call,
                                          self._function.owner_class)

    def _eval_call(self, call: ast.Call, state: IntervalState) -> IntRange:
        builtin = super()._eval_call(call, state)
        key = self.resolve(call)
        if key is not None:
            summary = self._analysis.return_summaries.get(key)
            if summary is not None:
                return summary
        return builtin

    def _apply_validators(self, node: ast.AST,
                          state: IntervalState) -> IntervalState:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            key = self.resolve(call)
            if key is None:
                continue
            constraints = self._analysis.validator_summaries.get(key)
            if not constraints:
                continue
            for name, expr in self._analysis.bind_args(key, call):
                required = constraints.get(name)
                if required is None:
                    continue
                arg_key = self.key_of(expr)
                if arg_key is not None:
                    state = state.set(
                        arg_key, state.get(arg_key).meet(required),
                        keep_facts=True)
        return state


class BudgetRangeAnalysis:
    """One whole-program run of the budget-range pass."""

    def __init__(self, program: Program, config: StaticCheckConfig) -> None:
        self.program = program
        self.config = config
        #: summary key -> {param name: interval that holds on normal return}
        self.validator_summaries: dict[str, dict[str, IntRange]] = {}
        #: summary key -> interval of the return value
        self.return_summaries: dict[str, IntRange] = {}
        #: summary key -> parameter names (bound self/cls stripped later)
        self._signatures: dict[str, tuple[str, ...]] = {}
        #: method name -> qualnames of budget functions carrying it, for
        #: attr calls on instances the model cannot type.
        self._by_method_name: dict[str, list[str]] = {}
        self._sink_functions = [
            (module, function)
            for module in program.modules.values()
            if config.is_float_sink(module.relpath)
            for function in module.functions.values()
            if not function.is_module_body
        ]
        for _, function in self._sink_functions:
            self._signatures[function.qualname] = function.params
            name = function.qualname.rsplit(".", 1)[-1]
            self._by_method_name.setdefault(name, []).append(
                function.qualname)
        self._cfg_cache: dict[str, CFG] = {}

    # -- call/summary resolution --------------------------------------------

    def summary_key(self, module: ModuleInfo, call: ast.Call,
                    owner_class: str | None) -> str | None:
        """Canonical key of the callee, when it is a budget function.

        Falls back to method-name matching for attr calls on untyped
        instances (``budget.charge_move(...)``) — the same last-resort
        the call graph uses — but only when every budget function with
        that name agrees on its signature, so the summary is sound for
        whichever one is called.
        """
        resolved = self.program.resolve_call(module, call, owner_class)
        if resolved is not None and resolved in self._signatures:
            return resolved
        if isinstance(call.func, ast.Attribute):
            candidates = self._by_method_name.get(call.func.attr, [])
            signatures = {self._signatures[name] for name in candidates}
            if len(signatures) == 1:
                return candidates[0]
        return None

    def bind_args(self, key: str,
                  call: ast.Call) -> list[tuple[str, ast.expr]]:
        """``(param name, argument expression)`` pairs for a call."""
        params = list(self._signatures.get(key, ()))
        if (params and params[0] in ("self", "cls")
                and isinstance(call.func, ast.Attribute)):
            params = params[1:]
        bound = list(zip(params, call.args))
        named = {kw.arg: kw.value for kw in call.keywords
                 if kw.arg is not None}
        for param in params[len(call.args):]:
            if param in named:
                bound.append((param, named[param]))
        return [(name, expr) for name, expr in bound]

    # -- per-function analysis -------------------------------------------------

    def _cfg_of(self, function: FunctionInfo) -> CFG:
        cfg = self._cfg_cache.get(function.qualname)
        if cfg is None:
            cfg = build_cfg(function.node)
            self._cfg_cache[function.qualname] = cfg
        return cfg

    def _entry_state(self, function: FunctionInfo) -> dict[str, IntRange]:
        seeds: dict[str, IntRange] = {}
        if function.params and function.params[0] == "self":
            for attr in self.config.budget_counter_attrs:
                seeds[f"self.{attr}"] = IntRange(0, None)
        return seeds

    def _solve(self, module: ModuleInfo, function: FunctionInfo,
               ) -> tuple[CFG, dict[int, IntervalState]]:
        cfg = self._cfg_of(function)
        analysis = _BudgetIntervals(
            self, function, module, param_ranges=self._entry_state(function))
        before, _ = solve(cfg, analysis)
        return cfg, before

    def _evaluator(self, module: ModuleInfo,
                   function: FunctionInfo) -> _BudgetIntervals:
        return _BudgetIntervals(self, function, module)

    # -- summary computation -------------------------------------------------

    def compute_summaries(self) -> None:
        """Iterate validator/return summaries over sink functions."""
        for _ in range(SUMMARY_ROUNDS):
            changed = False
            for module, function in self._sink_functions:
                cfg, before = self._solve(module, function)
                evaluator = self._evaluator(module, function)
                validators = self._exit_param_ranges(
                    cfg, before, function)
                returns = self._return_range(cfg, before, evaluator)
                key = function.qualname
                if validators != self.validator_summaries.get(key, {}):
                    self.validator_summaries[key] = validators
                    changed = True
                if returns != self.return_summaries.get(key):
                    if returns is not None:
                        self.return_summaries[key] = returns
                        changed = True
            if not changed:
                break

    def _exit_param_ranges(self, cfg: CFG,
                           before: dict[int, IntervalState],
                           function: FunctionInfo,
                           ) -> dict[str, IntRange]:
        exit_state = before[cfg.exit]
        if not exit_state.reachable:
            return {}
        out: dict[str, IntRange] = {}
        for param in function.params:
            if param in ("self", "cls"):
                continue
            rng = exit_state.get(param)
            if (rng.lo is not None or rng.hi is not None) and not rng.is_float:
                out[param] = rng
        return out

    def _return_range(self, cfg: CFG, before: dict[int, IntervalState],
                      evaluator: _BudgetIntervals) -> IntRange | None:
        joined: IntRange | None = None
        for block in cfg.statement_blocks():
            if not isinstance(block.node, ast.Return):
                continue
            state = before[block.index]
            if not state.reachable:
                continue
            value = (evaluator.eval(block.node.value, state)
                     if block.node.value is not None
                     else IntRange.top())
            joined = value if joined is None else joined.join(value)
        return joined

    # -- checks -----------------------------------------------------------------

    def findings(self) -> Iterator[Finding]:
        self.compute_summaries()
        for module, function in self._sink_functions:
            yield from self._check_sink_function(module, function)
        yield from self._check_callers()

    def _check_sink_function(self, module: ModuleInfo,
                             function: FunctionInfo) -> Iterator[Finding]:
        cfg, before = self._solve(module, function)
        evaluator = self._evaluator(module, function)
        exempt = module.exempt(FLOAT_OK_PRAGMA)
        counters = {f"self.{attr}": attr
                    for attr in self.config.budget_counter_attrs}
        for block in cfg.statement_blocks():
            state = before[block.index]
            if not state.reachable:
                continue
            node = block.node
            yield from self._check_counter_store(
                module, function, evaluator, counters, node, state)
            if block.line not in exempt:
                yield from self._check_cross_mult(
                    module, function, evaluator, node, state, exempt)

    def _check_counter_store(self, module: ModuleInfo,
                             function: FunctionInfo,
                             evaluator: _BudgetIntervals,
                             counters: dict[str, str], node: ast.AST,
                             state: IntervalState) -> Iterator[Finding]:
        targets: list[tuple[str, IntRange]] = []
        if isinstance(node, ast.Assign):
            value = evaluator.eval(node.value, state)
            for target in node.targets:
                key = evaluator.key_of(target)
                if key in counters:
                    targets.append((key, value))
        elif isinstance(node, ast.AugAssign):
            key = evaluator.key_of(node.target)
            if key in counters:
                synthetic = ast.BinOp(left=node.target, op=node.op,
                                      right=node.value)
                targets.append((key, evaluator.eval(synthetic, state)))
        for key, value in targets:
            attr = counters[key]
            line = getattr(node, "lineno", 0)
            if value.may_be_negative():
                low = "-inf" if value.lo is None else str(value.lo)
                yield Finding(
                    module.path, line, "budget-negative",
                    f"ledger counter {attr!r} may go negative here "
                    f"(proved range [{low}, "
                    f"{'+inf' if value.hi is None else value.hi}]); the "
                    "c-partial inequality needs moved/allocated >= 0 — "
                    "guard the operand (e.g. `if words <= 0: raise`) so "
                    "the surviving path proves it",
                    symbol=function.qualname, source="budget-range",
                )
            if value.is_float:
                yield Finding(
                    module.path, line, "budget-int",
                    f"ledger counter {attr!r} is assigned a value with "
                    "float evidence; the ledger must stay exact-integer "
                    "(Theorem 1 is ULP-tight at the budget boundary)",
                    symbol=function.qualname, source="budget-range",
                )

    def _check_cross_mult(self, module: ModuleInfo,
                          function: FunctionInfo,
                          evaluator: _BudgetIntervals, node: ast.AST,
                          state: IntervalState,
                          exempt: set[int]) -> Iterator[Finding]:
        for expr in ast.walk(node):
            if not (isinstance(expr, ast.BinOp)
                    and isinstance(expr.op, ast.Mult)):
                continue
            line = getattr(expr, "lineno", 0)
            if line in exempt:
                continue
            for side, operand in (("left", expr.left), ("right", expr.right)):
                rng = evaluator.eval(operand, state)
                if rng.is_float:
                    yield Finding(
                        module.path, line, "budget-int",
                        f"{side} operand of `*` carries float evidence "
                        f"({ast.unparse(operand)}); budget "
                        "cross-multiplications must stay exact-integer — "
                        "convert via as_integer_ratio/Fraction first",
                        symbol=function.qualname, source="budget-range",
                    )

    # -- interprocedural caller check ---------------------------------------------

    def _caller_candidates(self) -> Iterator[tuple[ModuleInfo, FunctionInfo]]:
        """Functions (anywhere) that call into the budget API."""
        method_names = set(self._by_method_name)
        plain_names = {qual.rsplit(".", 1)[-1]
                       for qual in self._signatures}
        sink_quals = set(self._signatures)
        for module in self.program.modules.values():
            for function in module.functions.values():
                if function.qualname in sink_quals:
                    continue  # already analyzed intraprocedurally
                for node in ast.walk(function.node):
                    if isinstance(node, ast.Call) and (
                            (isinstance(node.func, ast.Attribute)
                             and node.func.attr in method_names)
                            or (isinstance(node.func, ast.Name)
                                and node.func.id in plain_names)):
                        yield module, function
                        break

    def _check_callers(self) -> Iterator[Finding]:
        seen: set[str] = set()
        for module, function in self._caller_candidates():
            if function.qualname in seen:
                continue
            seen.add(function.qualname)
            expected_raise = _expected_raise_lines(function.node)
            reported: set[tuple[int, int, str, str]] = set()
            cfg, before = self._solve(module, function)
            evaluator = self._evaluator(module, function)
            for block in cfg.statement_blocks():
                state = before[block.index]
                if not state.reachable:
                    continue
                for call in ast.walk(block.node):
                    if not isinstance(call, ast.Call):
                        continue
                    if getattr(call, "lineno", 0) in expected_raise:
                        continue  # `with pytest.raises(...)`: the point
                    key = evaluator.resolve(call)
                    if key is None:
                        continue
                    constraints = self.validator_summaries.get(key, {})
                    for name, expr in self.bind_args(key, call):
                        required = constraints.get(name)
                        if required is None or required.lo is None:
                            continue
                        # A compound statement and the simple statements
                        # inside it are distinct CFG blocks, both walked
                        # here — report each call site once.
                        site = (getattr(call, "lineno", 0),
                                getattr(call, "col_offset", 0), key, name)
                        if site in reported:
                            continue
                        actual = evaluator.eval(expr, state)
                        if (actual.hi is not None
                                and actual.hi < required.lo):
                            reported.add(site)
                            yield Finding(
                                module.path, getattr(call, "lineno", 0),
                                "budget-call",
                                f"argument {name}={ast.unparse(expr)} is "
                                f"provably <= {actual.hi}, but "
                                f"{key.rsplit('.', 1)[-1]}() requires "
                                f"{name} >= {required.lo} on every normal "
                                "return (its guard raises otherwise) — "
                                "this call can only raise at runtime",
                                symbol=function.qualname,
                                source="budget-range",
                            )


def _expected_raise_lines(node: ast.AST) -> set[int]:
    """Lines inside a ``with ...raises(...):`` block (or similar).

    A call there is *meant* to violate its callee's guard — that is
    what the test asserts — so budget-call stays quiet about it.
    """
    lines: set[int] = set()
    for child in ast.walk(node):
        if not isinstance(child, (ast.With, ast.AsyncWith)):
            continue
        for item in child.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            func = expr.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else getattr(func, "id", ""))
            if name == "raises":
                end = child.end_lineno or child.lineno
                lines.update(range(child.lineno, end + 1))
    return lines


@program_pass(
    "budget-range",
    "interval analysis over the compaction ledger: counters provably "
    "non-negative, cross-multiplications exact-integer, callers checked "
    "against validator summaries",
    rule_ids=("budget-negative", "budget-int", "budget-call"),
    tier="dataflow",
)
def check_budget_range(program: Program,
                       config: StaticCheckConfig) -> Iterator[Finding]:
    """Run the budget-range interval pass over the program."""
    yield from BudgetRangeAnalysis(program, config).findings()
