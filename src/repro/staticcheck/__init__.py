"""Whole-program static analysis for the reproduction's own invariants.

Generic linters check style; this package proves repository-specific
properties the paper's claims rest on, *interprocedurally*:

* **float-taint** (:mod:`~repro.staticcheck.taint`) — no float value,
  produced anywhere in the program, reaches the budget-critical code
  whose comparisons Theorem 1 makes ULP-tight;
* **determinism** (:mod:`~repro.staticcheck.determinism`) — code that
  can reach an event emission or digest is free of iteration-order,
  identity, environment and wall-clock nondeterminism;
* **pickle** (:mod:`~repro.staticcheck.picklecheck`) — task specs are
  picklable and worker-reachable code never mutates module state;
* the **dataflow tier** (:mod:`~repro.staticcheck.cfg`,
  :mod:`~repro.staticcheck.dataflow`) — per-function control-flow
  graphs and a generic worklist solver feeding four flow-sensitive
  passes: **budget-range** (:mod:`~repro.staticcheck.budget_range`,
  interval analysis proving ledger counters non-negative and the
  cross-multiplication exact), **invariant-safety**, **alias-escape**
  and **dead-flow** (:mod:`~repro.staticcheck.flowpasses`);
* the **concurrency tier** (:mod:`~repro.staticcheck.effects`,
  :mod:`~repro.staticcheck.concurrency`) — per-function effect
  summaries iterated to fixpoint (shared-state writes, env/time/RNG/
  filesystem reads, resource acquisition) feeding four passes:
  **worker-shared-state**, **fork-unsafe-resource**,
  **cache-key-completeness** and **merge-order** — the static proof
  behind the engine's byte-identical serial/parallel contract;
* the seven per-module lint rules migrated from ``tools/lint_repro.py``
  (:mod:`~repro.staticcheck.rules_lint`).

Everything registers into one plugin registry
(:data:`~repro.staticcheck.base.RULE_REGISTRY`); ``repro staticcheck``
runs it all, gated by a committed baseline of justified suppressions.
See ``docs/static-analysis.md`` for the architecture and the rule
catalog, and :mod:`repro.staticcheck.fixtures` for the known-bad corpus
proving each pass actually fires.
"""

from .base import (
    Finding,
    RuleSpec,
    Severity,
    StaticCheckConfig,
    module_rule,
    program_pass,
    rule_catalog,
)
from .baseline import Baseline, BaselineEntry
from .cache import ModuleCache, package_fingerprint
from .callgraph import CallGraph, build_call_graph
from .cfg import CFG, Block, build_cfg
from .concurrency import effect_exempt_lines
from .dataflow import (
    DataflowAnalysis,
    IntervalAnalysis,
    IntervalState,
    IntRange,
    Liveness,
    ReachingDefinitions,
    solve,
)
from .effects import Effect, EffectAnalysis, EffectSummary, effect_analysis
from .model import FunctionInfo, ModuleInfo, Program, module_name_for
from .output import render_text, to_json, to_sarif
from .runner import (
    AnalysisResult,
    iter_python_files,
    run_on_program,
    run_staticcheck,
)

__all__ = [
    "Finding",
    "RuleSpec",
    "Severity",
    "StaticCheckConfig",
    "module_rule",
    "program_pass",
    "rule_catalog",
    "Baseline",
    "BaselineEntry",
    "ModuleCache",
    "package_fingerprint",
    "CallGraph",
    "build_call_graph",
    "Effect",
    "EffectAnalysis",
    "EffectSummary",
    "effect_analysis",
    "effect_exempt_lines",
    "CFG",
    "Block",
    "build_cfg",
    "DataflowAnalysis",
    "IntervalAnalysis",
    "IntervalState",
    "IntRange",
    "Liveness",
    "ReachingDefinitions",
    "solve",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "module_name_for",
    "render_text",
    "to_json",
    "to_sarif",
    "AnalysisResult",
    "iter_python_files",
    "run_on_program",
    "run_staticcheck",
]
