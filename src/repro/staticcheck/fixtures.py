"""Known-bad programs every analysis pass must provably flag.

The runtime checkers have :mod:`repro.check.fixtures` — corrupted event
streams each sanitizer rule must catch; this is the same idea one level
up.  Each fixture here is a tiny in-memory program (a ``{relpath:
source}`` mapping laid out like the real tree, so the default
:class:`~repro.staticcheck.base.StaticCheckConfig` applies unchanged)
seeded with exactly one bug of a known class, plus the rule id that must
fire on it.  ``tests/staticcheck/test_fixtures.py`` runs the whole
matrix both ways: the bad program must produce the expected rule, and
the ``fixed`` variant (where provided) must come back clean — mutation
testing for the analyzer itself, so a pass that silently stops firing
fails CI.

Fixtures never touch the disk: they go through
:meth:`~repro.staticcheck.model.Program.from_sources` and
:func:`~repro.staticcheck.runner.run_on_program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from textwrap import dedent

from .base import Finding, StaticCheckConfig
from .model import Program
from .runner import run_on_program

__all__ = ["StaticFixture", "STATIC_FIXTURES", "run_fixture"]


@dataclass(frozen=True)
class StaticFixture:
    """One seeded-bug program and the rule that must flag it."""

    name: str
    description: str
    #: The pass (registry name) under test — fixtures run only this pass,
    #: so a finding can only come from the analysis it exercises.
    pass_name: str
    #: The rule id the seeded bug must trigger.
    expect_rule: str
    #: ``{relpath: source}`` of the seeded-bug program.
    files: dict[str, str]
    #: Substring that must appear in the flagged symbol (when set).
    expect_symbol: str | None = None
    #: Optional clean variant: same program with the bug repaired; the
    #: pass must report nothing on it.
    fixed_files: dict[str, str] = field(default_factory=dict)


def run_fixture(fixture: StaticFixture, *,
                fixed: bool = False) -> list[Finding]:
    """Run the fixture's pass over its (bad or fixed) program."""
    files = fixture.fixed_files if fixed else fixture.files
    if not files:
        raise ValueError(f"fixture {fixture.name!r} has no "
                         f"{'fixed' if fixed else 'bad'} files")
    program = Program.from_sources(files)
    return run_on_program(program, StaticCheckConfig(),
                          rules=[fixture.pass_name])


def _src(text: str) -> str:
    return dedent(text).lstrip("\n")


# ---------------------------------------------------------------------------
# float-taint pass
# ---------------------------------------------------------------------------

#: A helper module whose return value is float-tainted.
_TAINTED_HELPER = _src("""
    \"\"\"Utility helpers (not budget-critical themselves).\"\"\"


    def average_ratio(moved: int, total: int) -> float:
        if total == 0:
            return 0.0
        return moved / total
""")

_FIXTURE_TAINT_RETURN = StaticFixture(
    name="taint-through-return",
    description=(
        "a budget-file function returns the result of a helper (defined "
        "in another module) whose own return is float-tainted; per-line "
        "lint cannot see this, the interprocedural summary must"
    ),
    pass_name="float-taint",
    expect_rule="float-taint",
    expect_symbol="repro.mm.budget.current_ratio",
    files={
        "src/repro/util/ratios.py": _TAINTED_HELPER,
        "src/repro/mm/budget.py": _src("""
            \"\"\"Budget accounting (exact arithmetic only).\"\"\"

            from repro.util.ratios import average_ratio


            def current_ratio(moved: int, total: int) -> int:
                return average_ratio(moved, total)
        """),
    },
    fixed_files={
        "src/repro/util/ratios.py": _src("""
            \"\"\"Utility helpers (not budget-critical themselves).\"\"\"


            def scaled_ratio(moved: int, total: int) -> int:
                if total == 0:
                    return 0
                return (moved * 1000) // total
        """),
        "src/repro/mm/budget.py": _src("""
            \"\"\"Budget accounting (exact arithmetic only).\"\"\"

            from repro.util.ratios import scaled_ratio


            def current_ratio(moved: int, total: int) -> int:
                return scaled_ratio(moved, total)
        """),
    },
)

_FIXTURE_TAINT_CALL = StaticFixture(
    name="taint-through-call",
    description=(
        "taint crosses two call hops: budget code calls a clean-looking "
        "wrapper which calls a deep helper built on time.time(); the "
        "summary fixpoint must propagate float-ness up the chain"
    ),
    pass_name="float-taint",
    expect_rule="float-taint",
    expect_symbol="repro.mm.budget.charge_estimate",
    files={
        "src/repro/util/clock.py": _src("""
            import time


            def stamp():
                return time.time()


            def wrapped_stamp():
                return stamp()
        """),
        "src/repro/mm/budget.py": _src("""
            from repro.util.clock import wrapped_stamp


            def charge_estimate(size: int):
                return wrapped_stamp()
        """),
    },
    fixed_files={
        "src/repro/util/clock.py": _src("""
            import time


            def stamp():
                return time.time_ns()


            def wrapped_stamp():
                return stamp()
        """),
        "src/repro/mm/budget.py": _src("""
            from repro.util.clock import wrapped_stamp


            def charge_estimate(size: int):
                return wrapped_stamp()
        """),
    },
)

_FIXTURE_TAINT_ARG = StaticFixture(
    name="taint-through-arg",
    description=(
        "a caller outside the budget files passes a float literal into a "
        "budget function whose parameter is declared int — the taint "
        "enters through the argument, not the return"
    ),
    pass_name="float-taint",
    expect_rule="float-taint-arg",
    expect_symbol="repro.sim.engine.run_step",
    files={
        "src/repro/mm/budget.py": _src("""
            def charge(amount: int) -> int:
                return amount * 2
        """),
        "src/repro/sim/engine.py": _src("""
            from repro.mm.budget import charge


            def run_step():
                return charge(0.5)
        """),
    },
    fixed_files={
        "src/repro/mm/budget.py": _src("""
            def charge(amount: int) -> int:
                return amount * 2
        """),
        "src/repro/sim/engine.py": _src("""
            from repro.mm.budget import charge


            def run_step():
                return charge(1)
        """),
    },
)


_FIXTURE_NUMPY_FLOAT_RETURN = StaticFixture(
    name="numpy-float-into-budget",
    description=(
        "budget code consumes a helper built on np.mean: numpy floats "
        "carry the same ULP hazard as Python floats, so the typed "
        "boundary must treat np.float producers as taint sources"
    ),
    pass_name="float-taint",
    expect_rule="float-taint",
    expect_symbol="repro.mm.budget.spent_fraction",
    files={
        "src/repro/util/kernel_stats.py": _src("""
            import numpy as np


            def window_cost(costs):
                return np.mean(costs)
        """),
        "src/repro/mm/budget.py": _src("""
            from repro.util.kernel_stats import window_cost


            def spent_fraction(costs):
                return window_cost(costs)
        """),
    },
    fixed_files={
        "src/repro/util/kernel_stats.py": _src("""
            import numpy as np


            def window_cost(costs):
                return int(np.count_nonzero(costs))
        """),
        "src/repro/mm/budget.py": _src("""
            from repro.util.kernel_stats import window_cost


            def spent_fraction(costs):
                return window_cost(costs)
        """),
    },
)

_FIXTURE_NUMPY_INT_BOUNDARY = StaticFixture(
    name="numpy-float-scalar-arg",
    description=(
        "a caller passes np.float64(...) into a budget function typed "
        "int: the boundary flags the float scalar, while the fixed "
        "variant's np.int64(...) crosses clean — numpy *integer* "
        "scalars compare exactly and must not trip the rule"
    ),
    pass_name="float-taint",
    expect_rule="float-taint-arg",
    expect_symbol="repro.sim.engine.charge_window",
    files={
        "src/repro/mm/budget.py": _src("""
            def charge(amount: int) -> int:
                return amount * 2
        """),
        "src/repro/sim/engine.py": _src("""
            import numpy as np

            from repro.mm.budget import charge


            def charge_window(costs):
                return charge(np.float64(costs[0]))
        """),
    },
    fixed_files={
        "src/repro/mm/budget.py": _src("""
            def charge(amount: int) -> int:
                return amount * 2
        """),
        "src/repro/sim/engine.py": _src("""
            import numpy as np

            from repro.mm.budget import charge


            def charge_window(costs):
                return charge(np.int64(costs[0]))
        """),
    },
)


# ---------------------------------------------------------------------------
# determinism pass
# ---------------------------------------------------------------------------

_FIXTURE_UNORDERED_DICT = StaticFixture(
    name="unordered-dict-into-digest",
    description=(
        "the canonical digest helper iterates a dict through set(), "
        "re-randomizing insertion order under hash seeding — the classic "
        "unordered-collection-into-digest bug"
    ),
    pass_name="determinism",
    expect_rule="unordered-iteration",
    expect_symbol="repro.check.determinism.canonical_event_bytes",
    files={
        "src/repro/check/determinism.py": _src("""
            def canonical_event_bytes(payload: dict) -> bytes:
                parts = []
                for key in set(payload):
                    parts.append(f"{key}={payload[key]}")
                return "|".join(parts).encode("ascii")
        """),
    },
    fixed_files={
        "src/repro/check/determinism.py": _src("""
            def canonical_event_bytes(payload: dict) -> bytes:
                parts = []
                for key in sorted(payload):
                    parts.append(f"{key}={payload[key]}")
                return "|".join(parts).encode("ascii")
        """),
    },
)

_FIXTURE_ID_ORDERING = StaticFixture(
    name="id-ordering-before-emit",
    description=(
        "a function that emits events orders its work list with "
        "sorted(key=id): object addresses differ across runs, so event "
        "order — and the digest — diverges"
    ),
    pass_name="determinism",
    expect_rule="id-ordering",
    expect_symbol="repro.sim.engine.flush",
    files={
        "src/repro/sim/engine.py": _src("""
            def flush(self, pending):
                for item in sorted(pending, key=id):
                    self.bus.emit(item)
        """),
    },
    fixed_files={
        "src/repro/sim/engine.py": _src("""
            def flush(self, pending):
                for item in sorted(pending, key=lambda e: e.seq):
                    self.bus.emit(item)
        """),
    },
)

_FIXTURE_TIME_READ = StaticFixture(
    name="time-into-digest",
    description=(
        "a wall-clock read (time.time) inside emit-reachable code: the "
        "emitted payload would differ between identically-seeded runs"
    ),
    pass_name="determinism",
    expect_rule="time-read",
    expect_symbol="repro.obs.bus.stamp_and_emit",
    files={
        "src/repro/obs/bus.py": _src("""
            import time


            def stamp_and_emit(bus, event):
                event.stamp = time.time()
                bus.emit(event)
        """),
    },
    fixed_files={
        "src/repro/obs/bus.py": _src("""
            import time


            def stamp_and_emit(bus, event):
                event.latency = time.perf_counter()
                bus.emit(event)
        """),
    },
)


# ---------------------------------------------------------------------------
# pickle pass
# ---------------------------------------------------------------------------

#: The worker module skeleton shared by the pickle fixtures.
_FIXTURE_UNPICKLABLE_FIELD = StaticFixture(
    name="unpicklable-task-field",
    description=(
        "a SimTask field annotated Callable: the spec would fail (or "
        "worse, partially survive) pickling into the worker pool"
    ),
    pass_name="pickle",
    expect_rule="unpicklable-field",
    expect_symbol="repro.parallel.tasks.SimTask",
    files={
        "src/repro/parallel/tasks.py": _src("""
            from dataclasses import dataclass
            from typing import Callable


            @dataclass(frozen=True)
            class SimTask:
                seed: int
                on_done: Callable[[int], None]


            def run_task(task: SimTask):
                return task.seed
        """),
    },
    fixed_files={
        "src/repro/parallel/tasks.py": _src("""
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class SimTask:
                seed: int
                done_event: str


            def run_task(task: SimTask):
                return task.seed
        """),
    },
)

_FIXTURE_LAMBDA_DEFAULT = StaticFixture(
    name="lambda-default-field",
    description=(
        "a task-spec field defaulting to a lambda — unpicklable even "
        "though the annotation looks innocent"
    ),
    pass_name="pickle",
    expect_rule="unpicklable-field",
    expect_symbol="repro.parallel.tasks.SimTask",
    files={
        "src/repro/parallel/tasks.py": _src("""
            from dataclasses import dataclass


            @dataclass
            class SimTask:
                seed: int
                keyfn: object = lambda x: x


            def run_task(task: SimTask):
                return task.seed
        """),
    },
)

_FIXTURE_WORKER_MUTATION = StaticFixture(
    name="worker-global-mutation",
    description=(
        "worker-reachable code (two hops below run_task) appends to a "
        "module-level list: per-process copies diverge silently and "
        "results depend on chunk scheduling"
    ),
    pass_name="pickle",
    expect_rule="worker-global-mutation",
    expect_symbol="repro.parallel.stats.record",
    files={
        "src/repro/parallel/tasks.py": _src("""
            from repro.parallel.stats import record


            def run_task(task):
                record(task)
                return task
        """),
        "src/repro/parallel/stats.py": _src("""
            HISTORY = []


            def record(task):
                HISTORY.append(task)
        """),
    },
    fixed_files={
        "src/repro/parallel/tasks.py": _src("""
            from repro.parallel.stats import record


            def run_task(task):
                return record(task)
        """),
        "src/repro/parallel/stats.py": _src("""
            def record(task):
                history = []
                history.append(task)
                return history
        """),
    },
)

_FIXTURE_WORKER_GLOBAL = StaticFixture(
    name="worker-global-assign",
    description=(
        "run_task itself rebinds a module global via a ``global`` "
        "declaration — the canonical worker-state bug"
    ),
    pass_name="pickle",
    expect_rule="worker-global-mutation",
    expect_symbol="repro.parallel.tasks.run_task",
    files={
        "src/repro/parallel/tasks.py": _src("""
            COUNTER = 0


            def run_task(task):
                global COUNTER
                COUNTER = COUNTER + 1
                return COUNTER
        """),
    },
)


# ---------------------------------------------------------------------------
# budget-range pass (interval dataflow)
# ---------------------------------------------------------------------------

_FIXTURE_BUDGET_REFUND = StaticFixture(
    name="budget-unguarded-refund",
    description=(
        "a refund path subtracts an unconstrained amount from the "
        "allocation counter: the interval analysis cannot bound the "
        "result below by zero, so the ledger invariant is unproven"
    ),
    pass_name="budget-range",
    expect_rule="budget-negative",
    expect_symbol="repro.mm.budget.CompactionBudget.refund",
    files={
        "src/repro/mm/budget.py": _src("""
            class CompactionBudget:
                def __init__(self):
                    self._allocated = 0

                def refund(self, words):
                    self._allocated -= words
        """),
    },
    fixed_files={
        "src/repro/mm/budget.py": _src("""
            class CompactionBudget:
                def __init__(self):
                    self._allocated = 0

                def refund(self, words):
                    self._allocated = max(0, self._allocated - words)
        """),
    },
)

_FIXTURE_BUDGET_SENTINEL = StaticFixture(
    name="budget-negative-sentinel",
    description=(
        "a reset path stores -1 into the moved-words counter as a "
        "sentinel: provably negative, so every downstream comparison "
        "against the budget is meaningless"
    ),
    pass_name="budget-range",
    expect_rule="budget-negative",
    expect_symbol="repro.mm.budget.CompactionBudget.reset",
    files={
        "src/repro/mm/budget.py": _src("""
            class CompactionBudget:
                def __init__(self):
                    self._moved = 0

                def reset(self):
                    self._moved = -1
        """),
    },
    fixed_files={
        "src/repro/mm/budget.py": _src("""
            class CompactionBudget:
                def __init__(self):
                    self._moved = 0

                def reset(self):
                    self._moved = 0
        """),
    },
)

_FIXTURE_BUDGET_FLOAT_MULT = StaticFixture(
    name="budget-float-cross-mult",
    description=(
        "the budget comparison multiplies by a ratio computed with true "
        "division: the cross-multiplication is float-valued, so the "
        "exact-arithmetic comparison silently becomes approximate"
    ),
    pass_name="budget-range",
    expect_rule="budget-int",
    expect_symbol="repro.mm.budget.CompactionBudget.within_budget",
    files={
        "src/repro/mm/budget.py": _src("""
            class CompactionBudget:
                def __init__(self, num, den):
                    self._allocated = 0
                    self._moved = 0
                    self._num = num
                    self._den = den

                def within_budget(self, words):
                    ratio = self._num / self._den
                    return (self._moved + words) * ratio <= self._allocated
        """),
    },
    fixed_files={
        "src/repro/mm/budget.py": _src("""
            class CompactionBudget:
                def __init__(self, num, den):
                    self._allocated = 0
                    self._moved = 0
                    self._num = num
                    self._den = den

                def within_budget(self, words):
                    lhs = (self._moved + words) * self._num
                    return lhs <= self._allocated * self._den
        """),
    },
)

_FIXTURE_BUDGET_DOOMED_CALL = StaticFixture(
    name="budget-doomed-call",
    description=(
        "a caller two modules away passes a provably-zero word count "
        "into charge_allocation, whose guard raises on words <= 0 on "
        "every path: the call can only raise at runtime; the validator "
        "summary plus the caller's intervals prove it"
    ),
    pass_name="budget-range",
    expect_rule="budget-call",
    expect_symbol="repro.sim.engine.bootstrap",
    files={
        "src/repro/mm/budget.py": _src("""
            class CompactionBudget:
                def __init__(self):
                    self._allocated = 0

                def charge_allocation(self, words):
                    if words <= 0:
                        raise ValueError("words must be positive")
                    self._allocated += words
        """),
        "src/repro/sim/engine.py": _src("""
            def bootstrap(budget):
                words = 0
                budget.charge_allocation(words)
        """),
    },
    fixed_files={
        "src/repro/mm/budget.py": _src("""
            class CompactionBudget:
                def __init__(self):
                    self._allocated = 0

                def charge_allocation(self, words):
                    if words <= 0:
                        raise ValueError("words must be positive")
                    self._allocated += words
        """),
        "src/repro/sim/engine.py": _src("""
            def bootstrap(budget):
                words = 1
                budget.charge_allocation(words)
        """),
    },
)


# ---------------------------------------------------------------------------
# invariant-safety pass (exception-path dataflow)
# ---------------------------------------------------------------------------

_FIXTURE_INVARIANT_RAISE = StaticFixture(
    name="invariant-raise-between-pair",
    description=(
        "an interval move removes the old entry, then validates the new "
        "address and raises: the exception escapes between the paired "
        "remove/add, leaving the index desynchronized from the heap"
    ),
    pass_name="invariant-safety",
    expect_rule="invariant-safety",
    expect_symbol="repro.heap.intervals.IntervalSet.move_interval",
    files={
        "src/repro/heap/intervals.py": _src("""
            class IntervalSet:
                def __init__(self):
                    self._index = set()

                def move_interval(self, old, new):
                    self._index.remove(old)
                    if new < 0:
                        raise ValueError("negative address")
                    self._index.add(new)
        """),
    },
    fixed_files={
        "src/repro/heap/intervals.py": _src("""
            class IntervalSet:
                def __init__(self):
                    self._index = set()

                def move_interval(self, old, new):
                    if new < 0:
                        raise ValueError("negative address")
                    self._index.remove(old)
                    self._index.add(new)
        """),
    },
)

_FIXTURE_INVARIANT_RETURN = StaticFixture(
    name="invariant-return-between-pair",
    description=(
        "a relocation removes the old gap, then bails out with an early "
        "return when the destination is taken: the normal return path "
        "escapes with the pair half-applied"
    ),
    pass_name="invariant-safety",
    expect_rule="invariant-safety",
    expect_symbol="repro.heap.gap_index.GapTable.relocate",
    files={
        "src/repro/heap/gap_index.py": _src("""
            class GapTable:
                def __init__(self):
                    self._gaps = set()
                    self._taken = set()

                def relocate(self, old, new):
                    self._gaps.remove(old)
                    if new in self._taken:
                        return False
                    self._gaps.add(new)
                    return True
        """),
    },
    fixed_files={
        "src/repro/heap/gap_index.py": _src("""
            class GapTable:
                def __init__(self):
                    self._gaps = set()
                    self._taken = set()

                def relocate(self, old, new):
                    if new in self._taken:
                        return False
                    self._gaps.remove(old)
                    self._gaps.add(new)
                    return True
        """),
    },
)


# ---------------------------------------------------------------------------
# alias-escape pass (flow-sensitive escape analysis)
# ---------------------------------------------------------------------------

_FIXTURE_ALIAS_MUTATION = StaticFixture(
    name="alias-mutation-outside-heap",
    description=(
        "simulation code aliases an interval-set internal into a local "
        "and mutates the alias one statement later: the lexical "
        "interval-internals rule sees only the access, the dataflow "
        "sees the mutation"
    ),
    pass_name="alias-escape",
    expect_rule="interval-alias",
    expect_symbol="repro.sim.compactor.trim_last",
    files={
        "src/repro/sim/compactor.py": _src("""
            def trim_last(intervals):
                rows = intervals._starts
                rows.pop()
                return rows
        """),
    },
    fixed_files={
        "src/repro/sim/compactor.py": _src("""
            def trim_last(intervals):
                rows = list(intervals._starts)
                rows.pop()
                return rows
        """),
    },
)

_FIXTURE_INTERNAL_ESCAPE = StaticFixture(
    name="internal-escape-from-heap",
    description=(
        "a heap-package accessor returns the live list behind the "
        "interval set: any caller can now desynchronize the index "
        "without the lexical rule ever seeing an underscore access"
    ),
    pass_name="alias-escape",
    expect_rule="interval-escape",
    expect_symbol="repro.heap.gap_index.GapIndex.snapshot",
    files={
        "src/repro/heap/gap_index.py": _src("""
            class GapIndex:
                def __init__(self):
                    self._starts = []

                def snapshot(self):
                    return self._starts
        """),
    },
    fixed_files={
        "src/repro/heap/gap_index.py": _src("""
            class GapIndex:
                def __init__(self):
                    self._starts = []

                def snapshot(self):
                    return list(self._starts)
        """),
    },
)


# ---------------------------------------------------------------------------
# dead-flow pass (unreachable code, dead stores)
# ---------------------------------------------------------------------------

_FIXTURE_DEAD_STORE = StaticFixture(
    name="dead-store-overwritten",
    description=(
        "a binding computed from a call is overwritten before any read "
        "on any path: backward liveness proves the store dead (the call "
        "may still matter — the finding says keep the call, drop the "
        "binding)"
    ),
    pass_name="dead-flow",
    expect_rule="dead-store",
    expect_symbol="repro.sim.planner.plan_total",
    files={
        "src/repro/sim/planner.py": _src("""
            def checksum(n):
                return n * 31


            def plan_total(n):
                total = checksum(n)
                total = 0
                for step in range(n):
                    total += step
                return total
        """),
    },
    fixed_files={
        "src/repro/sim/planner.py": _src("""
            def checksum(n):
                return n * 31


            def plan_total(n):
                checksum(n)
                total = 0
                for step in range(n):
                    total += step
                return total
        """),
    },
)

_FIXTURE_UNREACHABLE_TAIL = StaticFixture(
    name="unreachable-after-return",
    description=(
        "cleanup code stranded after an unconditional return: no CFG "
        "path from the function entry reaches it, so the close never "
        "runs"
    ),
    pass_name="dead-flow",
    expect_rule="unreachable-code",
    expect_symbol="repro.sim.reporter.finish",
    files={
        "src/repro/sim/reporter.py": _src("""
            def finish(report):
                return report.total
                report.close()
        """),
    },
    fixed_files={
        "src/repro/sim/reporter.py": _src("""
            def finish(report):
                report.close()
                return report.total
        """),
    },
)


# ---------------------------------------------------------------------------
# worker-shared-state pass (concurrency tier)
# ---------------------------------------------------------------------------

_FIXTURE_WORKER_CLASS_ATTR = StaticFixture(
    name="worker-class-attr-write",
    description=(
        "run_task bumps a counter stored as a *class* attribute: shared "
        "across every instance in a process, never shared back across "
        "the pool fork — serial and parallel totals silently diverge"
    ),
    pass_name="worker-shared-state",
    expect_rule="worker-shared-state",
    expect_symbol="repro.parallel.tasks.run_task",
    files={
        "src/repro/parallel/tasks.py": _src("""
            class TaskStats:
                completed = 0


            def run_task(task):
                TaskStats.completed = TaskStats.completed + 1
                return task
        """),
    },
    fixed_files={
        "src/repro/parallel/tasks.py": _src("""
            class TaskStats:
                completed = 0


            def run_task(task):
                return (task, 1)
        """),
    },
)

_FIXTURE_WORKER_PARAM_MUTATION = StaticFixture(
    name="worker-param-mutation",
    description=(
        "run_task passes an *imported* module-level dict into a helper "
        "that stores through the matching parameter: neither function "
        "alone looks wrong, only the summary fixpoint (helper mutates "
        "its param) composed with the call-site binding exposes the "
        "shared write"
    ),
    pass_name="worker-shared-state",
    expect_rule="worker-shared-state",
    expect_symbol="repro.parallel.tasks.run_task",
    files={
        "src/repro/parallel/registry.py": _src("""
            SEEN = {}


            def remember(store, task):
                store[task] = True
        """),
        "src/repro/parallel/tasks.py": _src("""
            from repro.parallel.registry import SEEN, remember


            def run_task(task):
                remember(SEEN, task)
                return task
        """),
    },
    fixed_files={
        "src/repro/parallel/registry.py": _src("""
            def remember(store, task):
                store[task] = True
        """),
        "src/repro/parallel/tasks.py": _src("""
            from repro.parallel.registry import remember


            def run_task(task):
                seen = {}
                remember(seen, task)
                return task
        """),
    },
)


# ---------------------------------------------------------------------------
# fork-unsafe-resource pass (concurrency tier)
# ---------------------------------------------------------------------------

_FIXTURE_FORK_LOCK = StaticFixture(
    name="fork-unsafe-lock",
    description=(
        "a module-level threading.Lock is created before the pool forks "
        "and then taken inside run_task: each worker inherits a private "
        "copy, so the lock synchronizes nothing (and a lock held at "
        "fork time deadlocks the child)"
    ),
    pass_name="fork-unsafe-resource",
    expect_rule="fork-unsafe-resource",
    expect_symbol="repro.parallel.tasks.run_task",
    files={
        "src/repro/parallel/tasks.py": _src("""
            import threading

            _IO_LOCK = threading.Lock()


            def run_task(task):
                with _IO_LOCK:
                    return task
        """),
    },
    fixed_files={
        "src/repro/parallel/tasks.py": _src("""
            import threading

            _IO_LOCK = threading.Lock()


            def submit(engine, tasks):
                with _IO_LOCK:
                    return engine.run(tasks)


            def run_task(task):
                return task
        """),
    },
)

_FIXTURE_FORK_TRACER = StaticFixture(
    name="fork-unsafe-tracer",
    description=(
        "a module-level Tracer singleton (a configured resource class) "
        "is used worker-side: its buffers and lock predate the fork, so "
        "worker spans land in a copy nobody ever reads; the fixed "
        "variant constructs the tracer inside the worker"
    ),
    pass_name="fork-unsafe-resource",
    expect_rule="fork-unsafe-resource",
    expect_symbol="repro.parallel.tasks.run_task",
    files={
        "src/repro/obs/trace.py": _src("""
            class Tracer:
                def __init__(self):
                    self.spans = []

                def record(self, name):
                    self.spans.append(name)


            NULL_TRACER = Tracer()
        """),
        "src/repro/parallel/tasks.py": _src("""
            from repro.obs.trace import NULL_TRACER


            def run_task(task):
                NULL_TRACER.record(task)
                return task
        """),
    },
    fixed_files={
        "src/repro/obs/trace.py": _src("""
            class Tracer:
                def __init__(self):
                    self.spans = []

                def record(self, name):
                    self.spans.append(name)
        """),
        "src/repro/parallel/tasks.py": _src("""
            from repro.obs.trace import Tracer


            def run_task(task):
                tracer = Tracer()
                tracer.record(task)
                return (task, tracer.spans)
        """),
    },
)


# ---------------------------------------------------------------------------
# cache-key-completeness pass (concurrency tier)
# ---------------------------------------------------------------------------

_FIXTURE_CACHE_ENV = StaticFixture(
    name="cache-unkeyed-env-read",
    description=(
        "run_task short-circuits on an env variable that is neither "
        "parent-side-keyed nor declared value-neutral: two environments "
        "share one ResultCache entry, so whichever ran first poisons "
        "the other"
    ),
    pass_name="cache-key-completeness",
    expect_rule="cache-key-completeness",
    expect_symbol="repro.parallel.tasks.run_task",
    files={
        "src/repro/parallel/tasks.py": _src("""
            import os


            def run_task(task):
                if os.environ.get("REPRO_FAST_PATH"):
                    return 0
                return task
        """),
    },
    fixed_files={
        "src/repro/parallel/tasks.py": _src("""
            def run_task(task):
                if task.fast_path:
                    return 0
                return task
        """),
    },
)

_FIXTURE_CACHE_GLOBAL = StaticFixture(
    name="cache-runtime-global-read",
    description=(
        "cached-result scope reads a module-level override table that "
        "another function mutates at runtime: the table's state never "
        "reaches the task digest, so cached results go stale the "
        "moment an override lands"
    ),
    pass_name="cache-key-completeness",
    expect_rule="cache-key-completeness",
    expect_symbol="repro.heap.kernel.resolve_kernel",
    files={
        "src/repro/heap/kernel.py": _src("""
            KERNEL_OVERRIDES = {}


            def set_kernel_override(name, value):
                KERNEL_OVERRIDES[name] = value


            def resolve_kernel(name):
                return KERNEL_OVERRIDES.get(name, name)
        """),
        "src/repro/parallel/tasks.py": _src("""
            from repro.heap.kernel import resolve_kernel


            def run_task(task):
                return resolve_kernel(task)
        """),
    },
    fixed_files={
        "src/repro/heap/kernel.py": _src("""
            def resolve_kernel(name, overrides):
                return overrides.get(name, name)
        """),
        "src/repro/parallel/tasks.py": _src("""
            from repro.heap.kernel import resolve_kernel


            def run_task(task):
                return resolve_kernel(task, {})
        """),
    },
)


# ---------------------------------------------------------------------------
# merge-order pass (concurrency tier)
# ---------------------------------------------------------------------------

_FIXTURE_MERGE_SET = StaticFixture(
    name="merge-order-set-iteration",
    description=(
        "the engine's merge loop deduplicates through set(): worker "
        "results submitted in order come back out in hash order, which "
        "PYTHONHASHSEED re-randomizes per process — the exact bug the "
        "serial/parallel byte-identity contract exists to prevent"
    ),
    pass_name="merge-order",
    expect_rule="merge-order",
    expect_symbol="repro.parallel.engine.ParallelEngine.run",
    files={
        "src/repro/parallel/engine.py": _src("""
            class ParallelEngine:
                def run(self, tasks):
                    results = []
                    for task in set(tasks):
                        results.append(task)
                    return results
        """),
    },
    fixed_files={
        "src/repro/parallel/engine.py": _src("""
            class ParallelEngine:
                def run(self, tasks):
                    results = []
                    for task in tasks:
                        results.append(task)
                    return results
        """),
    },
)

_FIXTURE_MERGE_LISTING = StaticFixture(
    name="merge-order-dir-listing",
    description=(
        "a sweep merge iterates os.listdir: filesystem order is "
        "platform- and history-dependent, so the merged rows differ "
        "between machines that computed identical shards"
    ),
    pass_name="merge-order",
    expect_rule="merge-order",
    expect_symbol="repro.analysis.sweep.simulation_sweep",
    files={
        "src/repro/analysis/sweep.py": _src("""
            import os


            def simulation_sweep(shard_dir):
                rows = []
                for name in os.listdir(shard_dir):
                    rows.append(name)
                return rows
        """),
    },
    fixed_files={
        "src/repro/analysis/sweep.py": _src("""
            import os


            def simulation_sweep(shard_dir):
                rows = []
                for name in sorted(os.listdir(shard_dir)):
                    rows.append(name)
                return rows
        """),
    },
)


#: The full corpus, in documentation order.
STATIC_FIXTURES: tuple[StaticFixture, ...] = (
    _FIXTURE_TAINT_RETURN,
    _FIXTURE_TAINT_CALL,
    _FIXTURE_TAINT_ARG,
    _FIXTURE_NUMPY_FLOAT_RETURN,
    _FIXTURE_NUMPY_INT_BOUNDARY,
    _FIXTURE_UNORDERED_DICT,
    _FIXTURE_ID_ORDERING,
    _FIXTURE_TIME_READ,
    _FIXTURE_UNPICKLABLE_FIELD,
    _FIXTURE_LAMBDA_DEFAULT,
    _FIXTURE_WORKER_MUTATION,
    _FIXTURE_WORKER_GLOBAL,
    _FIXTURE_BUDGET_REFUND,
    _FIXTURE_BUDGET_SENTINEL,
    _FIXTURE_BUDGET_FLOAT_MULT,
    _FIXTURE_BUDGET_DOOMED_CALL,
    _FIXTURE_INVARIANT_RAISE,
    _FIXTURE_INVARIANT_RETURN,
    _FIXTURE_ALIAS_MUTATION,
    _FIXTURE_INTERNAL_ESCAPE,
    _FIXTURE_DEAD_STORE,
    _FIXTURE_UNREACHABLE_TAIL,
    _FIXTURE_WORKER_CLASS_ATTR,
    _FIXTURE_WORKER_PARAM_MUTATION,
    _FIXTURE_FORK_LOCK,
    _FIXTURE_FORK_TRACER,
    _FIXTURE_CACHE_ENV,
    _FIXTURE_CACHE_GLOBAL,
    _FIXTURE_MERGE_SET,
    _FIXTURE_MERGE_LISTING,
)
