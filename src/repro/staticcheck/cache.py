"""On-disk incremental cache for per-module analysis results.

Module rules see exactly one module, so their findings are a pure
function of (analyzer code, config, selected rules, module path, module
content).  :class:`ModuleCache` persists that function: one small JSON
file per analyzed module, keyed by a content hash over all five
ingredients — edit one file and a warm run re-analyzes exactly that
module, which is what lets CI restore the cache via ``actions/cache``
and re-check a pull request in the time of its diff.

The analyzer-code ingredient is :func:`package_fingerprint` — a hash of
every ``.py`` file in this package — so changing any rule, the CFG
builder or the solver invalidates the whole cache without anyone
remembering to bump a version constant.

Program passes (float-taint, determinism, pickle, budget-range) see
the *whole* program and are deliberately never cached: any module edit
may change their verdict anywhere.  They re-run on every invocation;
the runner reports ``modules_reanalyzed`` for the cached tier only.

Fingerprints are assigned *after* the cache merge (they carry an
occurrence index that is global), so cached entries store findings
without fingerprints and byte-identical output falls out of the
runner's final :func:`~repro.staticcheck.base.fingerprint_findings`
sort, cache hit or miss.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Sequence

from .base import Finding, StaticCheckConfig

__all__ = ["ModuleCache", "package_fingerprint", "CACHE_FORMAT_VERSION"]

#: Bump when the on-disk JSON layout changes (not for analyzer changes —
#: those are covered by :func:`package_fingerprint`).
CACHE_FORMAT_VERSION = 1

_package_fp: str | None = None


def package_fingerprint() -> str:
    """Hash of the analyzer's own source (every ``.py`` in this package).

    Cached per process: the sources cannot change under a running
    analyzer, and the runner asks once per module.
    """
    global _package_fp
    if _package_fp is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for path in sorted(package_dir.glob("*.py")):
            digest.update(path.name.encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _package_fp = digest.hexdigest()
    return _package_fp


class ModuleCache:
    """Per-module findings cache rooted at ``directory``."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    # -- keys ------------------------------------------------------------

    @staticmethod
    def key_for(relpath: str, source: str, rule_names: Iterable[str],
                config: StaticCheckConfig) -> str:
        """Content key over everything a module rule's output depends on."""
        material = "\0".join((
            f"v{CACHE_FORMAT_VERSION}",
            package_fingerprint(),
            ",".join(sorted(rule_names)),
            repr(config),
            relpath,
            source,
        ))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _entry_path(self, relpath: str) -> Path:
        slug = hashlib.sha256(relpath.encode("utf-8")).hexdigest()[:24]
        return self.directory / f"{slug}.json"

    # -- load / store -----------------------------------------------------

    def load(self, relpath: str, key: str,
             root: Path) -> list[Finding] | None:
        """Cached findings for ``relpath`` iff the key matches, else None."""
        entry = self._entry_path(relpath)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (payload.get("version") != CACHE_FORMAT_VERSION
                or payload.get("key") != key
                or payload.get("relpath") != relpath):
            self.misses += 1
            return None
        findings = []
        for record in payload.get("findings", ()):
            findings.append(Finding(
                path=root / record["path"],
                line=record["line"],
                rule=record["rule"],
                message=record["message"],
                severity=record["severity"],
                symbol=record["symbol"],
                source=record["source"],
            ))
        self.hits += 1
        return findings

    def store(self, relpath: str, key: str, findings: Sequence[Finding],
              root: Path) -> None:
        """Persist one module's findings under its content key."""
        records = []
        for finding in findings:
            try:
                rel = finding.path.relative_to(root).as_posix()
            except ValueError:
                rel = finding.path.as_posix()
            records.append({
                "path": rel,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
                "severity": finding.severity,
                "symbol": finding.symbol,
                "source": finding.source,
            })
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "relpath": relpath,
            "findings": records,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = self._entry_path(relpath)
        tmp = entry.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=0, sort_keys=True),
                       encoding="utf-8")
        tmp.replace(entry)  # atomic: a killed run never corrupts an entry
