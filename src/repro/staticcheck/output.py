"""Report rendering: text, JSON, and SARIF 2.1.0.

Text is the human gate output (one ``path:line: rule: message`` line
per finding, like the old ``lint_repro`` output, plus a summary).  JSON
is the machine form of the same.  SARIF is what CI uploads as an
artifact: a minimal-but-valid SARIF 2.1.0 log with the full rule
catalog in ``tool.driver.rules``, one result per finding, and the
stable fingerprint under ``fingerprints`` so SARIF viewers dedupe
across commits the same way the baseline does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .base import Finding, RuleSpec

__all__ = ["render_text", "to_json", "to_sarif"]

#: SARIF schema constants.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-staticcheck"


def render_text(new: Sequence[Finding], suppressed: Sequence[Finding],
                stale_count: int, files_checked: int, root: Path,
                wall_seconds: float | None = None,
                max_findings: int = 100) -> str:
    """The console report."""
    lines = [finding.describe(root) for finding in new[:max_findings]]
    if len(new) > max_findings:
        lines.append(f"... {len(new) - max_findings} more findings elided "
                     f"(--max-findings)")
    status = "FAIL" if new else "OK"
    summary = (f"{status}: {files_checked} files checked, "
               f"{len(new)} findings")
    if suppressed:
        summary += f" ({len(suppressed)} baselined)"
    if stale_count:
        summary += f"; {stale_count} stale baseline entr" + (
            "y" if stale_count == 1 else "ies")
    if wall_seconds is not None:
        summary += f" [{wall_seconds:.2f}s]"
    lines.append(summary)
    return "\n".join(lines)


def to_json(new: Sequence[Finding], suppressed: Sequence[Finding],
            stale_count: int, files_checked: int, root: Path) -> str:
    """The ``--format json`` document."""
    return json.dumps({
        "tool": _TOOL_NAME,
        "files_checked": files_checked,
        "finding_count": len(new),
        "suppressed_count": len(suppressed),
        "stale_baseline_entries": stale_count,
        "findings": [finding.to_dict(root) for finding in new],
        "suppressed": [finding.to_dict(root) for finding in suppressed],
    }, indent=2, sort_keys=True)


def to_sarif(new: Sequence[Finding], suppressed: Sequence[Finding],
             catalog: Sequence[RuleSpec], root: Path) -> str:
    """The ``--format sarif`` document (SARIF 2.1.0).

    Baselined findings are included with ``suppressions`` so viewers
    show them greyed out rather than losing them entirely.
    """
    rules = []
    seen_ids: set[str] = set()
    for spec in catalog:
        for rule_id in spec.rule_ids:
            if rule_id in seen_ids:
                continue
            seen_ids.add(rule_id)
            rules.append({
                "id": rule_id,
                "shortDescription": {"text": spec.description},
                "properties": {"pass": spec.name, "kind": spec.kind,
                               "tier": spec.tier},
            })
    # Findings may carry rule ids outside the catalog (defensive).
    for finding in [*new, *suppressed]:
        if finding.rule not in seen_ids:
            seen_ids.add(finding.rule)
            rules.append({"id": finding.rule,
                          "shortDescription": {"text": finding.rule}})

    def result(finding: Finding, suppressed_entry: bool) -> dict:
        try:
            uri = finding.path.relative_to(root).as_posix()
        except ValueError:
            uri = finding.path.as_posix()
        record: dict = {
            "ruleId": finding.rule,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": max(finding.line, 1)},
                },
            }],
            "fingerprints": {f"{_TOOL_NAME}/v1": finding.fingerprint},
        }
        if finding.symbol:
            record["properties"] = {"symbol": finding.symbol,
                                    "pass": finding.source}
        if suppressed_entry:
            record["suppressions"] = [{"kind": "external",
                                       "justification": "baselined"}]
        return record

    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/repro/staticcheck",
                    "rules": rules,
                },
            },
            "results": [
                *(result(finding, False) for finding in new),
                *(result(finding, True) for finding in suppressed),
            ],
        }],
    }
    return json.dumps(log, indent=2)
