"""The seven repository lint rules, migrated onto the plugin registry.

These are the per-module rules that used to live (as free functions) in
``tools/lint_repro.py``; that script is now a thin shim over this
module.  Semantics are unchanged with one deliberate fix: ``# lint:
float-ok`` pragmas are now honoured anywhere on a **multi-line
statement** (the old rule only checked the exact line carrying the
float literal), via :func:`repro.staticcheck.base.exempt_lines`.

Each rule is a :func:`~repro.staticcheck.base.module_rule` plugin taking
one :class:`~repro.staticcheck.model.ModuleInfo`; scoping decisions
(which files the float rule covers, which package owns the interval
internals) come from the shared
:class:`~repro.staticcheck.base.StaticCheckConfig`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .base import Finding, StaticCheckConfig, module_rule
from .flowpasses import INTERVAL_INTERNALS, internal_access_findings
from .model import ModuleInfo

__all__ = [
    "check_no_float",
    "check_unseeded_random",
    "check_event_registry",
    "check_all_consistency",
    "check_bare_except",
    "check_unused_imports",
    "check_interval_internals",
    "GLOBAL_RANDOM_FUNCS",
    "INTERVAL_INTERNALS",
]

#: ``random`` module-level callables drawing from the hidden global RNG.
#: ``random.Random`` (the seeded class) is deliberately absent.
GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

# INTERVAL_INTERNALS moved to flowpasses (the dataflow tier owns the
# alias/escape semantics); re-exported above for compatibility.


def _node_lines(node: ast.AST) -> range:
    """The source lines a node spans (1-based, inclusive)."""
    start = getattr(node, "lineno", 0)
    end = getattr(node, "end_lineno", start) or start
    return range(start, end + 1)


# ---------------------------------------------------------------------------
# no-float
# ---------------------------------------------------------------------------


@module_rule(
    "no-float",
    "budget-critical code must use exact integer/Fraction arithmetic "
    "(Theorem 1 is ULP-tight at the budget boundary)",
)
def check_no_float(module: ModuleInfo,
                   config: StaticCheckConfig) -> Iterator[Finding]:
    """Flag float literals, ``float(...)`` and true division in scope."""
    if not config.is_float_sink(module.relpath):
        return
    exempt = module.float_ok_lines

    def flagged(node: ast.AST, message: str) -> Iterator[Finding]:
        if not exempt.intersection(_node_lines(node)):
            yield Finding(module.path, getattr(node, "lineno", 0),
                          "no-float", message)

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            yield from flagged(node, f"float literal {node.value!r}")
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            yield from flagged(
                node, "true division `/` (use integer or Fraction arithmetic)"
            )
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"):
            yield from flagged(node, "float(...) conversion")


# ---------------------------------------------------------------------------
# unseeded-random
# ---------------------------------------------------------------------------


@module_rule(
    "unseeded-random",
    "module-level random.* draws share hidden global state and break "
    "same-seed-same-digest; draw from a seeded random.Random(seed)",
)
def check_unseeded_random(module: ModuleInfo,
                          config: StaticCheckConfig) -> Iterator[Finding]:
    """Flag global-state ``random`` usage (module functions, bare imports)."""
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr in GLOBAL_RANDOM_FUNCS):
            yield Finding(
                module.path, node.lineno, "unseeded-random",
                f"random.{node.func.attr}() uses the hidden global RNG; "
                "draw from a seeded random.Random(seed) instance",
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = sorted(
                alias.name for alias in node.names
                if alias.name in GLOBAL_RANDOM_FUNCS
            )
            if bad:
                yield Finding(
                    module.path, node.lineno, "unseeded-random",
                    f"importing {', '.join(bad)} from random binds the "
                    "global RNG; use a seeded random.Random(seed) instance",
                )


# ---------------------------------------------------------------------------
# event-registry
# ---------------------------------------------------------------------------


def _kind_of(class_node: ast.ClassDef) -> str | None:
    """The ``kind: ClassVar[str] = "..."`` value of an event class."""
    for statement in class_node.body:
        if (isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.target.id == "kind"
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)):
            return statement.value.value
    return None


@module_rule(
    "event-registry",
    "every TelemetryEvent subclass must be in _EVENT_TYPES and __all__ "
    "or event_from_dict round-trips (and repro check) silently break",
)
def check_event_registry(module: ModuleInfo,
                         config: StaticCheckConfig) -> Iterator[Finding]:
    """Every concrete event class must be in ``_EVENT_TYPES`` / ``__all__``."""
    if module.relpath != config.events_module:
        return
    event_classes: dict[str, int] = {}
    registered: set[str] = set()
    exported: set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            bases = {base.id for base in node.bases
                     if isinstance(base, ast.Name)}
            if "TelemetryEvent" in bases and _kind_of(node) is not None:
                event_classes[node.name] = node.lineno
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            raw_targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
            targets = [t.id for t in raw_targets if isinstance(t, ast.Name)]
            if "_EVENT_TYPES" in targets and node.value is not None:
                for name_node in ast.walk(node.value):
                    if isinstance(name_node, ast.Name):
                        registered.add(name_node.id)
            if "__all__" in targets and isinstance(
                    node.value, (ast.List, ast.Tuple)):
                exported = {
                    element.value for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                }
    for name, line in sorted(event_classes.items(), key=lambda item: item[1]):
        if name not in registered:
            yield Finding(
                module.path, line, "event-registry",
                f"event class {name} is not registered in _EVENT_TYPES; "
                "event_from_dict cannot round-trip it",
            )
        if name not in exported:
            yield Finding(
                module.path, line, "event-registry",
                f"event class {name} is missing from __all__",
            )


# ---------------------------------------------------------------------------
# all-consistency
# ---------------------------------------------------------------------------


def _top_level_names(tree: ast.Module) -> set[str] | None:
    """Names bound at module scope (None when ``import *`` defeats it)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    return None
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks and import fallbacks bind names too.
            inner = ast.Module(body=list(ast.iter_child_nodes(node)),
                               type_ignores=[])
            nested = _top_level_names(inner)
            if nested is None:
                return None
            names.update(nested)
    return names


@module_rule(
    "all-consistency",
    "__all__ entries must be unique and actually bound in the module",
)
def check_all_consistency(module: ModuleInfo,
                          config: StaticCheckConfig) -> Iterator[Finding]:
    """``__all__`` entries must be unique and bound in the module."""
    tree = module.tree
    for node in tree.body:
        if not (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)
                and isinstance(node.value, (ast.List, ast.Tuple))):
            continue
        entries = [element.value for element in node.value.elts
                   if isinstance(element, ast.Constant)
                   and isinstance(element.value, str)]
        seen: set[str] = set()
        for entry in entries:
            if entry in seen:
                yield Finding(module.path, node.lineno, "all-consistency",
                              f"duplicate __all__ entry {entry!r}")
            seen.add(entry)
        defined = _top_level_names(tree)
        if defined is None:
            return
        for entry in entries:
            if entry not in defined:
                yield Finding(
                    module.path, node.lineno, "all-consistency",
                    f"__all__ exports {entry!r} but the module never binds it",
                )


# ---------------------------------------------------------------------------
# bare-except
# ---------------------------------------------------------------------------


@module_rule(
    "bare-except",
    "bare `except:` swallows KeyboardInterrupt and checker AssertionErrors",
)
def check_bare_except(module: ModuleInfo,
                      config: StaticCheckConfig) -> Iterator[Finding]:
    """Flag ``except:`` clauses."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(
                module.path, node.lineno, "bare-except",
                "bare `except:` swallows KeyboardInterrupt and checker "
                "AssertionErrors; name the exception type",
            )


# ---------------------------------------------------------------------------
# unused-import
# ---------------------------------------------------------------------------


@module_rule(
    "unused-import",
    "dead imports hide real dependencies (string forward references and "
    "__all__ re-exports count as uses)",
)
def check_unused_imports(module: ModuleInfo,
                         config: StaticCheckConfig) -> Iterator[Finding]:
    """Flag imports never referenced (by name, ``__all__``, or strings).

    String constants count as uses because quoted forward references
    (``driver: "ExecutionDriver"``) and Sphinx roles in docstrings refer
    to names linters cannot see; the rule errs lenient on purpose.
    """
    tree = module.tree
    imported: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported[alias.asname or alias.name.split(".")[0]] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name != "*":
                    imported[alias.asname or alias.name] = node.lineno
    if not imported:
        return
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif (isinstance(node, ast.Constant)
                and isinstance(node.value, str)):
            used.update(re.findall(r"\w+", node.value))
    for name, line in sorted(imported.items(), key=lambda item: item[1]):
        if name not in used:
            yield Finding(module.path, line, "unused-import",
                          f"{name!r} is imported but never used")


# ---------------------------------------------------------------------------
# interval-internals
# ---------------------------------------------------------------------------


@module_rule(
    "interval-internals",
    "interval/gap-index internals are owned by src/repro/heap/; external "
    "access desynchronizes the placement index",
)
def check_interval_internals(module: ModuleInfo,
                             config: StaticCheckConfig) -> Iterator[Finding]:
    """Flag attribute access to interval/gap-index internals.

    Thin delegate: the dataflow tier
    (:mod:`repro.staticcheck.flowpasses`) owns the internals set and the
    access semantics; its ``alias-escape`` rule adds the flow-sensitive
    half (mutation through aliases, escapes from heap code).
    """
    yield from internal_access_findings(module, config)
