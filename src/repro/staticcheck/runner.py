"""Orchestration: parse once, run every registered rule, gate on the baseline.

:func:`run_staticcheck` is the programmatic entry point (the CLI, the
``lint_repro`` shim, the benchmark and the tests all go through it):

1. expand the requested paths into ``.py`` files and parse them into one
   :class:`~repro.staticcheck.model.Program`;
2. run every registered module rule over every module, and every
   registered program pass over the whole program (optionally filtered
   with ``rules=``);
3. fingerprint the findings and split them against the baseline.

Module rules are a pure function of one module, which buys two things
program passes cannot have:

* **incremental runs** — with ``cache_dir=`` set, each module's findings
  are recalled from a :class:`~repro.staticcheck.cache.ModuleCache`
  keyed by content hash; a warm run after a one-file edit re-analyzes
  exactly that module (``AnalysisResult.modules_reanalyzed``);
* **parallel runs** — with ``jobs > 1`` the cache misses fan out over a
  :class:`~repro.parallel.engine.ParallelEngine` process pool.

Program passes always run serially and uncached (any module edit may
change their verdict anywhere).  Output is byte-identical across
``jobs``/cache states because fingerprints are assigned by one final
:func:`~repro.staticcheck.base.fingerprint_findings` sort over the
merged findings.

Exit-code contract (shared by ``repro staticcheck`` and the shim):
``0`` clean (everything suppressed or nothing found), ``1`` at least
one non-baselined finding, ``2`` the invocation itself was invalid.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .base import (
    Finding,
    RuleSpec,
    Severity,
    StaticCheckConfig,
    fingerprint_findings,
    rule_catalog,
)
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .cache import ModuleCache
from .model import ModuleInfo, Program

__all__ = [
    "AnalysisResult",
    "repo_root",
    "default_paths",
    "iter_python_files",
    "run_staticcheck",
    "run_on_program",
]

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


def repo_root() -> Path:
    """The repository root (three levels above this file's package)."""
    return Path(__file__).resolve().parents[3]


def default_paths(root: Path | None = None) -> list[Path]:
    """The default analysis scope: ``src/repro`` and ``tools``."""
    base = root if root is not None else repo_root()
    return [base / "src" / "repro", base / "tools"]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    program: Program
    #: Non-baselined findings (these fail the gate), sorted.
    findings: list[Finding]
    #: Baselined findings.
    suppressed: list[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing this run.
    stale_entries: list = field(default_factory=list)
    files_checked: int = 0
    wall_seconds: float = 0.0
    #: Files that failed to parse ((path, error) pairs) — reported as
    #: syntax-error findings too.
    parse_errors: list = field(default_factory=list)
    #: Modules the cached tier actually re-analyzed this run (equals
    #: ``files_checked`` minus parse failures when no cache is set).
    modules_reanalyzed: int = 0
    #: Incremental-cache hits (0 without ``cache_dir``).
    cache_hits: int = 0
    #: Worker processes used for the module-rule tier.
    jobs: int = 1

    @property
    def ok(self) -> bool:
        """Whether the gate passes."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """The process exit code for this result."""
        return 0 if self.ok else 1


def _selected_rules(rules: Sequence[str] | None) -> list[RuleSpec]:
    catalog = rule_catalog()
    if rules is None:
        return catalog
    wanted = set(rules)
    known = {spec.name for spec in catalog}
    for spec in catalog:
        known.update(spec.rule_ids)
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [
        spec for spec in catalog
        if spec.name in wanted or wanted.intersection(spec.rule_ids)
    ]


def _analyze_module_payload(payload: tuple[str, str, str],
                            rule_names: tuple[str, ...],
                            config: StaticCheckConfig) -> list[Finding]:
    """Run the named module rules over one ``(relpath, path, source)``.

    Module-level so it pickles into pool workers.  The source re-parses
    locally — cheaper and start-method-agnostic compared to shipping an
    AST across the process boundary — and cannot fail: ``Program.load``
    already filtered out files with syntax errors.
    """
    relpath, path_str, source = payload
    module = ModuleInfo(relpath, Path(path_str), source,
                        ast.parse(source, filename=path_str))
    specs = {spec.name: spec for spec in rule_catalog()}
    findings: list[Finding] = []
    for name in rule_names:
        findings.extend(specs[name].func(module, config))
    return findings


def _run_rules(program: Program, cfg: StaticCheckConfig,
               specs: Sequence[RuleSpec], *, jobs: int = 1,
               cache: ModuleCache | None = None) -> tuple[list[Finding], int]:
    """Execute the rule tiers; returns (raw findings, modules re-analyzed).

    Module rules go through the cache (when set) and the process pool
    (when ``jobs > 1``); program passes always run serially, uncached.
    Findings come back *unfingerprinted* — callers must finish with
    :func:`fingerprint_findings` so every execution strategy yields
    byte-identical output.
    """
    module_specs = [spec for spec in specs if spec.kind == "module"]
    program_specs = [spec for spec in specs if spec.kind == "program"]
    findings: list[Finding] = []
    reanalyzed = 0
    if module_specs:
        rule_names = tuple(spec.name for spec in module_specs)
        misses: list[tuple[ModuleInfo, str | None]] = []
        for module in program.modules.values():
            key: str | None = None
            if cache is not None:
                key = ModuleCache.key_for(module.relpath, module.source,
                                          rule_names, cfg)
                hit = cache.load(module.relpath, key, program.root)
                if hit is not None:
                    findings.extend(hit)
                    continue
            misses.append((module, key))
        reanalyzed = len(misses)
        if jobs > 1 and len(misses) > 1:
            from ..parallel.engine import ParallelEngine

            worker = partial(_analyze_module_payload,
                             rule_names=rule_names, config=cfg)
            payloads = [(module.relpath, str(module.path), module.source)
                        for module, _ in misses]
            batches = ParallelEngine(jobs=jobs).map(worker, payloads)
        else:
            batches = []
            for module, _ in misses:
                batch: list[Finding] = []
                for spec in module_specs:
                    batch.extend(spec.func(module, cfg))
                batches.append(batch)
        for (module, key), batch in zip(misses, batches):
            findings.extend(batch)
            if cache is not None and key is not None:
                cache.store(module.relpath, key, batch, program.root)
    for spec in program_specs:
        findings.extend(spec.func(program, cfg))
    return findings, reanalyzed


def run_on_program(program: Program, config: StaticCheckConfig | None = None,
                   rules: Sequence[str] | None = None, *, jobs: int = 1,
                   cache: ModuleCache | None = None) -> list[Finding]:
    """Run the selected rules over an already-built program (no baseline).

    Findings come back fingerprinted and sorted; this is the fixture
    corpus's entry point, and ``run_staticcheck`` builds on it.
    """
    cfg = config if config is not None else StaticCheckConfig()
    findings, _ = _run_rules(program, cfg, _selected_rules(rules),
                             jobs=jobs, cache=cache)
    return fingerprint_findings(findings, program.root)


def run_staticcheck(
    paths: Sequence[Path] | None = None,
    *,
    root: Path | None = None,
    config: StaticCheckConfig | None = None,
    rules: Sequence[str] | None = None,
    baseline: Baseline | None = None,
    baseline_path: Path | None = None,
    jobs: int = 1,
    cache_dir: Path | None = None,
) -> AnalysisResult:
    """Parse, analyze, and gate the given paths (defaults: src/repro, tools).

    ``baseline`` wins over ``baseline_path``; with neither, the
    committed root baseline is used when present.  ``jobs`` fans module
    rules over worker processes; ``cache_dir`` enables the incremental
    module cache — both leave the output byte-identical to a serial
    cold run.
    """
    started = time.perf_counter()
    base = root if root is not None else repo_root()
    scope = list(paths) if paths else default_paths(base)
    files = list(iter_python_files(scope))
    program = Program.load(files, base)
    cfg = config if config is not None else StaticCheckConfig()
    cache = ModuleCache(Path(cache_dir)) if cache_dir is not None else None
    raw, reanalyzed = _run_rules(program, cfg, _selected_rules(rules),
                                 jobs=jobs, cache=cache)
    findings = fingerprint_findings(raw, program.root)
    if program.parse_errors:
        findings.extend(fingerprint_findings(
            [Finding(path, 0, "syntax-error", error,
                     severity=Severity.ERROR)
             for path, error in program.parse_errors],
            base,
        ))
    if baseline is None:
        candidate = (baseline_path if baseline_path is not None
                     else base / DEFAULT_BASELINE_NAME)
        baseline = Baseline.load(candidate)
    new, suppressed, stale = baseline.split(findings)
    return AnalysisResult(
        program=program,
        findings=new,
        suppressed=suppressed,
        stale_entries=stale,
        files_checked=len(files),
        wall_seconds=time.perf_counter() - started,
        parse_errors=list(program.parse_errors),
        modules_reanalyzed=reanalyzed,
        cache_hits=cache.hits if cache is not None else 0,
        jobs=jobs,
    )
