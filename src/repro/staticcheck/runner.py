"""Orchestration: parse once, run every registered rule, gate on the baseline.

:func:`run_staticcheck` is the programmatic entry point (the CLI, the
``lint_repro`` shim, the benchmark and the tests all go through it):

1. expand the requested paths into ``.py`` files and parse them into one
   :class:`~repro.staticcheck.model.Program`;
2. run every registered module rule over every module, and every
   registered program pass over the whole program (optionally filtered
   with ``rules=``);
3. fingerprint the findings and split them against the baseline.

Exit-code contract (shared by ``repro staticcheck`` and the shim):
``0`` clean (everything suppressed or nothing found), ``1`` at least
one non-baselined finding, ``2`` the invocation itself was invalid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .base import (
    Finding,
    RuleSpec,
    Severity,
    StaticCheckConfig,
    fingerprint_findings,
    rule_catalog,
)
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .model import Program

__all__ = [
    "AnalysisResult",
    "repo_root",
    "default_paths",
    "iter_python_files",
    "run_staticcheck",
    "run_on_program",
]

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


def repo_root() -> Path:
    """The repository root (three levels above this file's package)."""
    return Path(__file__).resolve().parents[3]


def default_paths(root: Path | None = None) -> list[Path]:
    """The default analysis scope: ``src/repro`` and ``tools``."""
    base = root if root is not None else repo_root()
    return [base / "src" / "repro", base / "tools"]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    program: Program
    #: Non-baselined findings (these fail the gate), sorted.
    findings: list[Finding]
    #: Baselined findings.
    suppressed: list[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing this run.
    stale_entries: list = field(default_factory=list)
    files_checked: int = 0
    wall_seconds: float = 0.0
    #: Files that failed to parse ((path, error) pairs) — reported as
    #: syntax-error findings too.
    parse_errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the gate passes."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """The process exit code for this result."""
        return 0 if self.ok else 1


def _selected_rules(rules: Sequence[str] | None) -> list[RuleSpec]:
    catalog = rule_catalog()
    if rules is None:
        return catalog
    wanted = set(rules)
    known = {spec.name for spec in catalog}
    for spec in catalog:
        known.update(spec.rule_ids)
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [
        spec for spec in catalog
        if spec.name in wanted or wanted.intersection(spec.rule_ids)
    ]


def run_on_program(program: Program, config: StaticCheckConfig | None = None,
                   rules: Sequence[str] | None = None) -> list[Finding]:
    """Run the selected rules over an already-built program (no baseline).

    Findings come back fingerprinted and sorted; this is the fixture
    corpus's entry point, and ``run_staticcheck`` builds on it.
    """
    cfg = config if config is not None else StaticCheckConfig()
    findings: list[Finding] = []
    for spec in _selected_rules(rules):
        if spec.kind == "module":
            for module in program.modules.values():
                findings.extend(spec.func(module, cfg))
        else:
            findings.extend(spec.func(program, cfg))
    return fingerprint_findings(findings, program.root)


def run_staticcheck(
    paths: Sequence[Path] | None = None,
    *,
    root: Path | None = None,
    config: StaticCheckConfig | None = None,
    rules: Sequence[str] | None = None,
    baseline: Baseline | None = None,
    baseline_path: Path | None = None,
) -> AnalysisResult:
    """Parse, analyze, and gate the given paths (defaults: src/repro, tools).

    ``baseline`` wins over ``baseline_path``; with neither, the
    committed root baseline is used when present.
    """
    started = time.perf_counter()
    base = root if root is not None else repo_root()
    scope = list(paths) if paths else default_paths(base)
    files = list(iter_python_files(scope))
    program = Program.load(files, base)
    findings = run_on_program(program, config, rules)
    if program.parse_errors:
        findings.extend(fingerprint_findings(
            [Finding(path, 0, "syntax-error", error,
                     severity=Severity.ERROR)
             for path, error in program.parse_errors],
            base,
        ))
    if baseline is None:
        candidate = (baseline_path if baseline_path is not None
                     else base / DEFAULT_BASELINE_NAME)
        baseline = Baseline.load(candidate)
    new, suppressed, stale = baseline.split(findings)
    return AnalysisResult(
        program=program,
        findings=new,
        suppressed=suppressed,
        stale_entries=stale,
        files_checked=len(files),
        wall_seconds=time.perf_counter() - started,
        parse_errors=list(program.parse_errors),
    )
