"""Call graph over the whole-program model.

One node per :class:`~repro.staticcheck.model.FunctionInfo` (including
the synthetic ``<module>`` bodies, so import-time calls count).  Edges
point at *canonical* callee qualnames; calls into the standard library
keep their dotted name (``math.sqrt``, ``time.time``) so the taint and
determinism passes can recognise float/time sources without the targets
being part of the program.  Calls that cannot be resolved at all are
remembered by attribute name (``.emit``) — enough for the determinism
pass to treat ``self.observer.emit(...)`` as an emission site without
knowing the observer's class.

The graph exposes forward reachability (:meth:`CallGraph.reachable`,
used by the picklability pass from worker entry points) and reverse
reachability (:meth:`CallGraph.can_reach`, used by the determinism pass
to find everything that can emit into the digest).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from .model import Program

__all__ = ["CallSite", "CallGraph", "build_call_graph"]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside one function."""

    caller: str
    callee: str | None  # canonical qualname or external dotted name
    attr: str | None    # attribute name for unresolved method calls
    node: ast.Call = field(compare=False, hash=False)
    line: int = 0


class CallGraph:
    """Adjacency over canonical qualnames, plus per-function call sites."""

    def __init__(self) -> None:
        #: caller -> set of resolved callee qualnames (internal + external).
        self.edges: dict[str, set[str]] = {}
        #: caller -> set of unresolved attribute-call names.
        self.attr_calls: dict[str, set[str]] = {}
        #: caller -> every call site, in source order.
        self.sites: dict[str, list[CallSite]] = {}
        self._reverse: dict[str, set[str]] | None = None

    def add(self, site: CallSite) -> None:
        """Record one call site."""
        self.sites.setdefault(site.caller, []).append(site)
        self.edges.setdefault(site.caller, set())
        self.attr_calls.setdefault(site.caller, set())
        if site.callee is not None:
            self.edges[site.caller].add(site.callee)
            self._reverse = None
        if site.attr is not None:
            self.attr_calls[site.caller].add(site.attr)

    def callees(self, caller: str) -> set[str]:
        """Resolved callees of one function."""
        return self.edges.get(caller, set())

    def callers(self, callee: str) -> set[str]:
        """Resolved callers of one function (reverse edges, cached)."""
        if self._reverse is None:
            reverse: dict[str, set[str]] = {}
            for caller, callees in self.edges.items():
                for target in callees:
                    reverse.setdefault(target, set()).add(caller)
            self._reverse = reverse
        return self._reverse.get(callee, set())

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Forward closure: every function reachable from ``roots``."""
        seen: set[str] = set()
        stack = [root for root in roots]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def can_reach(self, targets: set[str], *,
                  attr_targets: frozenset[str] = frozenset()) -> set[str]:
        """Every function from which some target is transitively callable.

        ``attr_targets`` matches unresolved attribute calls by name, so
        ``self.bus.emit(...)`` marks its caller even though the bus's
        class is unknown.
        """
        relevant: set[str] = set()
        for caller, callees in self.edges.items():
            if callees & targets:
                relevant.add(caller)
        if attr_targets:
            for caller, attrs in self.attr_calls.items():
                if attrs & attr_targets:
                    relevant.add(caller)
        changed = True
        while changed:
            changed = False
            for caller, callees in self.edges.items():
                if caller not in relevant and callees & relevant:
                    relevant.add(caller)
                    changed = True
        return relevant


def build_call_graph(program: Program) -> CallGraph:
    """Walk every function body once and record its call sites."""
    graph = CallGraph()
    for qualname, function in program.functions.items():
        module = program.modules[function.module]
        graph.edges.setdefault(qualname, set())
        graph.attr_calls.setdefault(qualname, set())
        graph.sites.setdefault(qualname, [])
        for node in _own_nodes(function.node):
            if not isinstance(node, ast.Call):
                continue
            callee = program.resolve_call(
                module, node, owner_class=function.owner_class
            )
            attr = (node.func.attr
                    if callee is None and isinstance(node.func, ast.Attribute)
                    else None)
            graph.add(CallSite(
                caller=qualname, callee=callee, attr=attr,
                node=node, line=node.lineno,
            ))
    return graph


def _own_nodes(root: ast.AST) -> Iterable[ast.AST]:
    """Every node belonging to ``root`` but not to a nested def/class.

    The module pseudo-function owns only true top-level statements;
    function bodies own everything except nested functions and classes
    (those get their own call-graph nodes).
    """
    def walk(node: ast.AST) -> Iterable[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            yield child
            yield from walk(child)

    yield from walk(root)
