"""Flow-sensitive module passes: invariant-safety, alias-escape, dead-flow.

Three passes built on the CFG (:mod:`repro.staticcheck.cfg`) and the
worklist solver (:mod:`repro.staticcheck.dataflow`):

* **invariant-safety** — exception-path analysis of *paired mutations*.
  ``IntervalSet.add``/``remove`` keep the gap index synchronized as a
  remove/add pair; ``SimHeap.move`` is a remove/add on the occupied
  set.  Once the opening half has run, the structure is torn until the
  closing half runs — so on every path between the pair, an explicit
  ``raise``, a failing ``assert`` or an early ``return`` leaks a state
  that ``check_invariants`` would reject.  The pass searches the CFG
  from each open site and flags any such exit reachable before a close
  on the same receiver.  ``try/finally`` and rollback-in-handler are
  *naturally* clean: the duplicated finally/handler blocks put the
  close on the exceptional path, so the search passes a close first
  (``SimHeap.move`` verifies clean for exactly this reason).  A lone
  ``remove`` with no reachable ``add`` is a complete operation
  (``SimHeap.free``), not a pair — the pass only arms between a pair.

* **alias-escape** — flow-sensitive may-alias tracking of interval /
  gap-index internals, superseding the lexical ``interval-internals``
  rule (which delegates to :func:`internal_access_findings` here).
  Outside the heap package, *mutating through an alias*
  (``rows = iv._starts; rows.pop()``) desynchronizes the index one
  step removed from the attribute access — the lexical rule sees the
  access, only the dataflow sees the mutation (``interval-alias``).
  Inside the heap package, returning or yielding an alias of an
  internal hands callers a live reference (``interval-escape``);
  copies (``list(...)``, ``sorted(...)``, ``.copy()``) do not alias.

* **dead-flow** — unreachable code (CFG blocks not reachable from the
  entry, with constant-test folding so ``while True:`` has no false
  exit) and dead stores (backward liveness; a binding never read on
  any path out).  Names read inside nested functions are treated as
  always-live (closure cells are read at call time), ``_``-prefixed
  names are deliberate discards, and only plain single-name
  assignments are flagged — loop/with/except binders and tuple
  unpacking stay exempt.

``# lint: invariant-ok`` / ``# lint: deadflow-ok`` pragmas suppress a
finding on the statement carrying them, same spans as ``float-ok``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .base import (DEADFLOW_OK_PRAGMA, INVARIANT_OK_PRAGMA, Finding,
                   StaticCheckConfig, module_rule)
from .cfg import CFG, EXC, build_cfg
from .dataflow import (DataflowAnalysis, Liveness, closure_loads, solve)
from .model import FunctionInfo, ModuleInfo

__all__ = [
    "check_invariant_safety",
    "check_alias_escape",
    "check_dead_flow",
    "internal_access_findings",
    "INTERVAL_INTERNALS",
    "MUTATOR_METHODS",
]

#: Interval-set / gap-index internals owned by ``src/repro/heap/``.
#: (Authoritative home; ``rules_lint`` re-exports it for compatibility.)
INTERVAL_INTERNALS = frozenset({
    "_starts", "_ends",
    "_gap_end", "_gap_buckets", "_class_mask", "_size_order",
})

#: Method calls that mutate a list/set/dict alias in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
})


def _functions_of(module: ModuleInfo) -> Iterator[FunctionInfo]:
    for function in module.functions.values():
        if not function.is_module_body:
            yield function


# ---------------------------------------------------------------------------
# interval-internals (lexical part, delegated to by rules_lint)
# ---------------------------------------------------------------------------


def internal_access_findings(module: ModuleInfo,
                             config: StaticCheckConfig) -> Iterator[Finding]:
    """Direct attribute access to interval/gap-index internals outside
    the heap package — the lexical half of the alias-escape tier."""
    if config.in_heap_package(module.relpath):
        return
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Attribute)
                and node.attr in INTERVAL_INTERNALS):
            yield Finding(
                module.path, node.lineno, "interval-internals",
                f"direct access to {node.attr!r}: the gap index mirrors "
                "the interval arrays, so external pokes desynchronize "
                "placement search; use the IntervalSet public API",
            )


# ---------------------------------------------------------------------------
# invariant-safety
# ---------------------------------------------------------------------------


def _attr_calls(node: ast.AST) -> Iterator[tuple[str, str]]:
    """``(receiver text, method name)`` for attr calls inside ``node``."""
    for call in ast.walk(node):
        if (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)):
            yield ast.unparse(call.func.value), call.func.attr


def _torn_exits(cfg: CFG, open_block: int,
                close_blocks: set[int]) -> Iterator[int]:
    """Blocks with an exit statement reachable from ``open_block``
    without first completing a close.

    Traversal starts *after* the open: an exc edge out of the open
    block itself means the open never mutated anything, and a normal
    edge out of a close block means the pair completed (an exc edge
    out of a close means the close itself failed, so the torn state
    survives it — that path keeps exploring).
    """
    seen: set[int] = set()
    frontier = [dst for dst, kind in cfg.succs[open_block] if kind != EXC]
    while frontier:
        index = frontier.pop()
        if index in seen:
            continue
        seen.add(index)
        node = cfg.blocks[index].node
        if isinstance(node, (ast.Raise, ast.Assert, ast.Return)):
            yield index
        if index in close_blocks:
            frontier.extend(dst for dst, kind in cfg.succs[index]
                            if kind == EXC)
        else:
            frontier.extend(dst for dst, _ in cfg.succs[index])


@module_rule(
    "invariant-safety",
    "paired mutations on IntervalSet/GapIndex/SimHeap must reach a "
    "consistent state on every exit edge; raise/early-return between "
    "the pair leaks a torn structure",
    tier="dataflow",
)
def check_invariant_safety(module: ModuleInfo,
                           config: StaticCheckConfig) -> Iterator[Finding]:
    """Flag exits reachable between a paired open/close mutation."""
    if not config.in_invariant_scope(module.relpath):
        return
    exempt = module.exempt(INVARIANT_OK_PRAGMA)
    for function in _functions_of(module):
        cfg = build_cfg(function.node)
        calls_by_block: dict[int, list[tuple[str, str]]] = {}
        for block in cfg.statement_blocks():
            pairs = list(_attr_calls(block.node))
            if pairs:
                calls_by_block[block.index] = pairs
        reported: set[tuple[int, str]] = set()
        for open_name, close_name in config.invariant_pairs:
            opens = [(index, recv)
                     for index, pairs in calls_by_block.items()
                     for recv, meth in pairs if meth == open_name]
            for open_block, receiver in opens:
                open_line = cfg.blocks[open_block].line
                if open_line in exempt:
                    continue
                closes = {index
                          for index, pairs in calls_by_block.items()
                          for recv, meth in pairs
                          if meth == close_name and recv == receiver
                          and index != open_block}
                reachable = cfg.reachable(open_block)
                if not closes & reachable:
                    continue  # lone open: a complete operation, not a pair
                for exit_block in _torn_exits(cfg, open_block, closes):
                    block = cfg.blocks[exit_block]
                    if block.line in exempt:
                        continue
                    key = (block.line, type(block.node).__name__)
                    if key in reported:
                        continue
                    reported.add(key)
                    how = {"Raise": "raise", "Assert": "failing assert",
                           "Return": "early return"}[
                               type(block.node).__name__]
                    yield Finding(
                        module.path, block.line, "invariant-safety",
                        f"{how} between `{receiver}.{open_name}(...)` "
                        f"(line {open_line}) and its matching "
                        f"`{receiver}.{close_name}(...)` leaves the "
                        "structure torn (check_invariants would fail); "
                        "complete the pair first, or protect it with "
                        "try/finally or a rollback handler",
                        symbol=function.qualname, source="invariant-safety",
                    )


# ---------------------------------------------------------------------------
# alias-escape
# ---------------------------------------------------------------------------


class _AliasAnalysis(DataflowAnalysis[frozenset]):
    """Forward may-alias analysis: which local names alias an internal."""

    direction = "forward"

    def boundary(self) -> frozenset:
        return frozenset()

    def bottom(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, block, state: frozenset) -> frozenset:
        node = block.node
        if node is None or not isinstance(node, ast.Assign):
            return state
        new = set(state)
        if (len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(node.targets[0].elts) == len(node.value.elts)):
            for target, value in zip(node.targets[0].elts, node.value.elts):
                if isinstance(target, ast.Name):
                    if is_alias_expr(value, state):
                        new.add(target.id)
                    else:
                        new.discard(target.id)
            return frozenset(new)
        aliased = is_alias_expr(node.value, state)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if aliased:
                    new.add(target.id)
                else:
                    new.discard(target.id)
        return frozenset(new)


def is_alias_expr(expr: ast.expr, aliases: Iterable[str]) -> bool:
    """Whether ``expr`` evaluates to a live reference into an internal.

    Attribute access to an internal aliases it; so does a name already
    aliasing one, and a conditional choosing between aliases.  A
    *subscript* of either does not: the internals are flat sequences of
    ints, so ``self._ends[-1]`` extracts an immutable element (stores
    through ``alias[i] = x`` are caught separately, on the container).
    A call — ``list(...)``, ``sorted(...)``, ``x.copy()`` — returns a
    fresh object, so it never aliases.
    """
    if isinstance(expr, ast.Attribute):
        return expr.attr in INTERVAL_INTERNALS
    if isinstance(expr, ast.Name):
        return expr.id in set(aliases)
    if isinstance(expr, ast.IfExp):
        return (is_alias_expr(expr.body, aliases)
                or is_alias_expr(expr.orelse, aliases))
    return False


def _mutations_of(node: ast.AST,
                  aliases: frozenset) -> Iterator[tuple[int, str]]:
    """``(line, description)`` of in-place mutations through an alias."""
    for child in ast.walk(node):
        if (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in MUTATOR_METHODS
                and is_alias_expr(child.func.value, aliases)):
            yield (child.lineno,
                   f"{ast.unparse(child.func)}(...) mutates")
        elif isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = (child.targets if isinstance(child, ast.Assign)
                       else [child.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and is_alias_expr(target.value, aliases)):
                    yield (child.lineno,
                           f"subscript store into "
                           f"{ast.unparse(target.value)} mutates")
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if (isinstance(target, ast.Subscript)
                        and is_alias_expr(target.value, aliases)):
                    yield (child.lineno,
                           f"del through {ast.unparse(target.value)} mutates")


@module_rule(
    "alias-escape",
    "flow-sensitive escape analysis of interval/gap-index internals: "
    "mutation through an alias outside the heap package, and heap code "
    "returning a live reference to an internal",
    rule_ids=("interval-alias", "interval-escape"),
    tier="dataflow",
)
def check_alias_escape(module: ModuleInfo,
                       config: StaticCheckConfig) -> Iterator[Finding]:
    """Flag alias mutations (outside heap) and alias escapes (inside)."""
    inside_heap = config.in_heap_package(module.relpath)
    for function in _functions_of(module):
        cfg = build_cfg(function.node)
        before, _ = solve(cfg, _AliasAnalysis())
        for block in cfg.statement_blocks():
            aliases = before[block.index]
            node = block.node
            if not inside_heap:
                for line, what in _mutations_of(node, aliases):
                    yield Finding(
                        module.path, line, "interval-alias",
                        f"{what} interval/gap-index internals through an "
                        "alias; the gap index mirrors the interval "
                        "arrays, so this desynchronizes placement "
                        "search — copy (`list(...)`) instead of "
                        "aliasing, or use the IntervalSet public API",
                        symbol=function.qualname, source="alias-escape",
                    )
            else:
                escaped: ast.expr | None = None
                if isinstance(node, ast.Return) and node.value is not None:
                    escaped = node.value
                elif (isinstance(node, ast.Expr)
                        and isinstance(node.value, (ast.Yield, ast.YieldFrom))
                        and node.value.value is not None):
                    escaped = node.value.value
                if escaped is None:
                    continue
                leaking = [element for element in
                           (escaped.elts if isinstance(escaped, ast.Tuple)
                            else [escaped])
                           if is_alias_expr(element, aliases)]
                for element in leaking:
                    yield Finding(
                        module.path, node.lineno, "interval-escape",
                        f"returning/yielding {ast.unparse(element)} hands "
                        "the caller a live reference to interval/gap-index "
                        "internals; return a copy (`list(...)`, "
                        "`tuple(...)`) so external code cannot "
                        "desynchronize the index",
                        symbol=function.qualname, source="alias-escape",
                    )


# ---------------------------------------------------------------------------
# dead-flow
# ---------------------------------------------------------------------------


def _region_heads(cfg: CFG, unreachable: set[int]) -> Iterator[int]:
    """First block of each contiguous unreachable region (one finding
    per region, not one per statement)."""
    for index in sorted(unreachable):
        preds = {src for src, _ in cfg.preds[index]}
        if not preds & unreachable:
            yield index


def _declared_nonlocal(func_node: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func_node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)  # `del x` counts as a use
    return names


@module_rule(
    "dead-flow",
    "unreachable code and dead stores, from the CFG and backward "
    "liveness (closure-read names are always live; _-prefixed names "
    "are deliberate discards)",
    rule_ids=("dead-store", "unreachable-code"),
    tier="dataflow",
)
def check_dead_flow(module: ModuleInfo,
                    config: StaticCheckConfig) -> Iterator[Finding]:
    """Flag unreachable statements and never-read bindings."""
    exempt = module.exempt(DEADFLOW_OK_PRAGMA)
    for function in _functions_of(module):
        cfg = build_cfg(function.node)
        reachable = cfg.reachable()
        reachable_lines = {cfg.blocks[index].line for index in reachable}
        # Finally duplication can leave an unreachable *copy* of a line
        # whose other copies run; only lines with no live copy count.
        unreachable = {
            block.index for block in cfg.statement_blocks()
            if block.index not in reachable
            and block.line not in reachable_lines
            and block.line not in exempt
        }
        for index in _region_heads(cfg, unreachable):
            block = cfg.blocks[index]
            yield Finding(
                module.path, block.line, "unreachable-code",
                f"unreachable code: no path from the function entry "
                f"reaches `{ast.unparse(block.node)[:60]}`",
                symbol=function.qualname, source="dead-flow",
            )

        protected = (closure_loads(function.node)
                     | _declared_nonlocal(function.node))
        _, live_after = solve(cfg, Liveness())
        for block in cfg.statement_blocks():
            if block.index not in reachable or block.line in exempt:
                continue
            node = block.node
            name: str | None = None
            value: ast.expr | None = None
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                name, value = node.targets[0].id, node.value
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                    and isinstance(node.target, ast.Name)):
                name, value = node.target.id, node.value
            if (name is None or name.startswith("_") or name in protected
                    or name == getattr(value, "id", None)):
                continue
            if name not in live_after[block.index]:
                side_effects = any(isinstance(child, (ast.Call, ast.Await))
                                   for child in ast.walk(value))
                hint = ("keep the call, drop the binding"
                        if side_effects else "remove the statement")
                yield Finding(
                    module.path, block.line, "dead-store",
                    f"dead store: {name!r} is assigned but never read on "
                    f"any path from here; {hint}",
                    symbol=function.qualname, source="dead-flow",
                )
