"""Interprocedural effect-and-escape inference: per-function summaries.

The concurrency tier (:mod:`repro.staticcheck.concurrency`) needs one
question answered precisely: *what does this function touch besides its
arguments and locals?*  This module computes, for every function in the
program, an :class:`EffectSummary` — the function's observable side
effects — and iterates them to a fixpoint over the call graph so a
mutation four helpers deep still surfaces at the worker entry point,
with a ``via`` chain spelling out every hop (the same provenance scheme
as :meth:`~repro.staticcheck.taint.FloatTaintAnalysis.taint_path`).

Tracked effect kinds (:class:`Effect`):

* ``shared-write`` — rebinding a declared ``global``, storing into or
  calling a mutating method on a module-level mutable container (own
  module or imported from another), writing a class attribute
  (``Cls.attr = ...`` / ``cls.attr = ...``), or passing a module-level
  mutable into a callee that mutates the matching parameter (the
  param-mutation half of the fixpoint);
* ``env-read`` — ``os.environ[...]`` / ``os.environ.get`` /
  ``os.getenv``, with the variable name recovered when it is a string
  constant;
* ``time-read`` / ``rng-read`` / ``fs-read`` — wall-clock reads,
  module-level RNG draws, filesystem reads: inputs a cached or
  replayed result must not silently depend on;
* ``resource-acquire`` — opening/constructing a process-wide resource
  (files, locks, sockets, tracers, event buses).

Two escape hatches the plain call graph does not have:

* **constructor edges** — a call that resolves to a program *class*
  continues into ``Class.__init__``, so effects inside constructors are
  not invisible (the call graph proper stops at the class name);
* **``functools.partial`` references** — ``partial(f, ...)`` counts as
  an edge to ``f``: the engine dispatches partials of module-level
  workers, and their effects must not hide behind the wrapper.

Summaries are deliberately *cut off at external dotted calls*: a call
into ``json``/``math``/any non-program module contributes no effects
(except the recognized env/time/rng/fs/resource sources above), so the
analysis under-reports rather than flooding — the same contract as
:meth:`~repro.staticcheck.model.Program.resolve_call`.

Nested functions are not call-graph nodes (see ``_own_nodes``), but
their bodies run under the definer's control sooner or later, so their
``global`` writes and closure-cell mutations of module-level state are
attributed to the enclosing function — a decorator's wrapper that bumps
a module counter is an effect of the decorated function's module scope,
not of nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from .base import StaticCheckConfig
from .callgraph import CallGraph, build_call_graph
from .model import FunctionInfo, ModuleInfo, Program

__all__ = [
    "Effect",
    "EffectSummary",
    "EffectAnalysis",
    "MUTATING_METHODS",
    "effect_analysis",
]

#: Method names that mutate their receiver in place (the purity pass's
#: list, plus ``write``-family names for file-like receivers).
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "popleft", "appendleft", "remove", "discard",
    "clear", "sort", "reverse", "write", "writelines",
})

#: Wall-clock callables (canonical dotted names) that vary run to run.
_TIME_SOURCES = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.localtime", "time.gmtime", "time.ctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module-level RNG draws (unseeded, process-global state).
_RNG_SOURCES = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.uniform", "random.gauss", "random.getrandbits",
})

#: Filesystem readers reached by dotted name.
_FS_SOURCES = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})

#: Attribute-call names that read the filesystem through a Path-like
#: receiver (best effort: the receiver's type is unknown).
_FS_ATTR_CALLS = frozenset({
    "read_text", "read_bytes", "iterdir", "glob", "rglob",
})


@dataclass(frozen=True)
class Effect:
    """One observable side effect of one function.

    ``key`` (kind, detail) identifies the effect for fixpoint merging;
    ``line`` anchors the *local* evidence — the write/read itself for a
    direct effect, the propagating call site for an inherited one.
    """

    kind: str    # shared-write | env-read | time-read | rng-read |
                 # fs-read | resource-acquire
    detail: str  # "module global '_CACHE'", "env 'REPRO_KERNEL'", ...
    line: int

    @property
    def key(self) -> tuple[str, str]:
        """Identity for merging: the effect minus its location."""
        return (self.kind, self.detail)


@dataclass
class EffectSummary:
    """Everything one function (transitively) does to the outside world."""

    qualname: str
    #: Effects whose evidence is in this function's own body.
    direct: list[Effect]
    #: Direct plus everything inherited from callees, keyed for lookup.
    effects: dict[tuple[str, str], Effect]
    #: Parameter names this function mutates in place (directly or by
    #: forwarding into a mutating callee).
    mutated_params: frozenset[str]

    def by_kind(self, kind: str) -> list[Effect]:
        """Transitive effects of one kind, in deterministic order."""
        return sorted(
            (effect for effect in self.effects.values()
             if effect.kind == kind),
            key=lambda effect: (effect.detail, effect.line),
        )


class EffectAnalysis:
    """Per-function effect summaries, iterated to a fixpoint.

    Also owns the *augmented* reachability the concurrency passes run
    on: call-graph edges plus constructor edges plus
    ``functools.partial`` references, with BFS parent pointers so a
    finding can print the exact ``root -> ... -> function`` chain that
    put the function in scope.
    """

    def __init__(self, program: Program, config: StaticCheckConfig,
                 graph: CallGraph | None = None) -> None:
        self.program = program
        self.config = config
        self.graph = graph if graph is not None else build_call_graph(program)
        #: Canonical qualname -> resolved module-level mutable names it
        #: exports ({local name -> owning module}).
        self._module_mutables: dict[str, set[str]] = {
            name: set(module.module_level_mutables)
            for name, module in program.modules.items()
        }
        #: module name -> its top-level string constants (for recovering
        #: env-var names passed as ``os.environ.get(KERNEL_ENV_VAR)``).
        self._module_consts: dict[str, dict[str, str]] = {}
        #: caller -> augmented callees (constructor + partial edges in).
        self.edges: dict[str, set[str]] = {}
        self.summaries: dict[str, EffectSummary] = {}
        #: qualname -> next hop each inherited effect came through.
        self.via: dict[str, dict[tuple[str, str], str]] = {}
        self._build_edges()
        self._compute_summaries()

    # -- augmented edges -----------------------------------------------------

    def _build_edges(self) -> None:
        for qualname, function in self.program.functions.items():
            module = self.program.modules[function.module]
            local_imports = self._function_imports(module, function)
            receivers = self._receiver_types(module, function, local_imports)
            targets: set[str] = set()
            for site in self.graph.sites.get(qualname, ()):
                callee = site.callee
                if callee is None:
                    callee = self._resolve_with_locals(
                        site.node, local_imports, receivers)
                if callee is not None:
                    targets.add(callee)
                    init = self._constructor_of(callee)
                    if init is not None:
                        targets.add(init)
                for referenced in self._partial_references(module, site.node,
                                                           local_imports):
                    targets.add(referenced)
            self.edges[qualname] = targets

    def _function_imports(self, module: ModuleInfo,
                          function: FunctionInfo) -> dict[str, str]:
        """Alias → target for imports *inside* the function body.

        The repo leans on function-level imports to keep module import
        graphs light; without them ``run_solve_task``'s call into the
        locally-imported ``GameSolver`` would be invisible.
        """
        if function.is_module_body:
            return {}
        imports: dict[str, str] = {}
        for node in ast.walk(function.node):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    imports[bound] = alias.name if alias.asname else bound
            elif isinstance(node, ast.ImportFrom):
                base = module._resolve_import_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name != "*":
                        bound = alias.asname or alias.name
                        imports[bound] = f"{base}.{alias.name}"
        return imports

    def _receiver_types(self, module: ModuleInfo, function: FunctionInfo,
                        local_imports: dict[str, str]) -> dict[str, str]:
        """Local variable → program class, for single-class bindings.

        ``solver = GameSolver(...)`` followed by ``solver.solve()`` is a
        resolvable method call even though the plain call graph drops
        it; a name rebound to two different classes is dropped again.
        """
        types: dict[str, str | None] = {}
        for node in ast.walk(function.node):
            if (not isinstance(node, ast.Assign)
                    or len(node.targets) != 1
                    or not isinstance(node.targets[0], ast.Name)
                    or not isinstance(node.value, ast.Call)):
                continue
            resolved = self.program.resolve_call(
                module, node.value, owner_class=function.owner_class)
            if resolved is None:
                resolved = self._resolve_with_locals(
                    node.value, local_imports, {})
            if resolved is None or resolved not in self.program.classes:
                continue
            name = node.targets[0].id
            if name in types and types[name] != resolved:
                types[name] = None
            else:
                types.setdefault(name, resolved)
        return {name: cls for name, cls in types.items() if cls is not None}

    def _resolve_with_locals(self, call: ast.Call,
                             local_imports: dict[str, str],
                             receivers: dict[str, str]) -> str | None:
        """Resolution through function-level imports and typed locals."""
        func = call.func
        if isinstance(func, ast.Name):
            target = local_imports.get(func.id)
            if target is not None:
                return self.program.resolve_symbol(target) or target
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            receiver_class = receivers.get(func.value.id)
            if receiver_class is not None:
                return self.program._resolve_method(receiver_class,
                                                    func.attr)
            target = local_imports.get(func.value.id)
            if target is not None:
                dotted = f"{target}.{func.attr}"
                return self.program.resolve_symbol(dotted) or dotted
        return None

    def _constructor_of(self, callee: str) -> str | None:
        """``Class.__init__`` when ``callee`` names a program class."""
        if callee in self.program.classes:
            init = f"{callee}.__init__"
            if init in self.program.functions:
                return init
        return None

    def _partial_references(self, module: ModuleInfo, call: ast.Call,
                            local_imports: dict[str, str]) -> Iterator[str]:
        """Functions referenced through ``functools.partial(f, ...)``."""
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "partial" or not call.args:
            return
        target = call.args[0]
        if not isinstance(target, ast.Name):
            return
        dotted = local_imports.get(
            target.id,
            module.imports.get(target.id, f"{module.name}.{target.id}"))
        resolved = self.program.resolve_symbol(dotted)
        if resolved is not None and resolved in self.program.functions:
            yield resolved

    def reachable(self, roots: Iterable[str]) -> dict[str, str | None]:
        """BFS closure over augmented edges, with parent pointers.

        Returns ``{qualname: parent}`` (roots map to ``None``) in
        deterministic order: roots are visited sorted, neighbours too.
        """
        parents: dict[str, str | None] = {}
        frontier = sorted(set(roots))
        for root in frontier:
            parents[root] = None
        while frontier:
            next_frontier: list[str] = []
            for current in frontier:
                for callee in sorted(self.edges.get(current, ())):
                    if callee in parents:
                        continue
                    parents[callee] = current
                    next_frontier.append(callee)
            frontier = next_frontier
        return parents

    @staticmethod
    def chain(parents: dict[str, str | None], qualname: str,
              limit: int = 8) -> str:
        """``root -> a -> b -> qualname`` from BFS parent pointers."""
        hops = [qualname]
        current = parents.get(qualname)
        while current is not None and len(hops) < limit:
            hops.append(current)
            current = parents.get(current)
        short = [hop.split(".")[-1] if hop.count(".") > 1 else hop
                 for hop in reversed(hops)]
        return " -> ".join(short)

    # -- direct effect extraction --------------------------------------------

    def _resolve_global(self, module: ModuleInfo, name: str,
                        local_names: set[str]) -> str | None:
        """The owning module of a module-level mutable ``name`` reads.

        Checks the function's own module first, then names imported from
        sibling modules (``from x import REGISTRY``); shadowed names are
        not global references at all.
        """
        if name in local_names:
            return None
        if name in module.module_level_mutables:
            return module.name
        imported = module.imports.get(name)
        if imported is None:
            return None
        parts = imported.rsplit(".", 1)
        if len(parts) != 2:
            return None
        owner, attr = parts
        if attr in self._module_mutables.get(owner, ()):
            return owner
        return None

    def _direct_effects(self, function: FunctionInfo) -> tuple[
            list[Effect], set[str]]:
        """(direct effects, directly mutated params) for one function.

        Walks the whole function *including nested defs* — a closure
        mutating module-level state acts on behalf of its definer — but
        tracks each nesting level's local names so shadowing is honoured
        per scope.
        """
        module = self.program.modules[function.module]
        effects: list[Effect] = []
        mutated_params: set[str] = set()
        params = set(function.params)

        def scan(node: ast.AST, local_names: set[str],
                 declared_global: set[str], top_level: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    inner_locals = _assigned_names(child)
                    inner_locals.update(
                        a.arg for a in (list(child.args.posonlyargs)
                                        + list(child.args.args)
                                        + list(child.args.kwonlyargs)))
                    # The enclosing scope's locals shadow module state
                    # for the closure too (cell reads), but its own
                    # globals start fresh.
                    scan(child, local_names | inner_locals, set(), False)
                    continue
                if isinstance(child, ast.ClassDef):
                    continue
                self._scan_node(child, module, function, local_names,
                                declared_global, top_level, params,
                                effects, mutated_params)
                scan(child, local_names, declared_global, top_level)

        if function.is_module_body:
            return [], set()
        local_names = _assigned_names(function.node)
        local_names.update(function.params)
        declared_global: set[str] = set()
        # `global` declarations un-shadow their names at this level.
        for node in ast.walk(function.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        local_names -= declared_global
        scan(function.node, local_names, declared_global, True)
        return effects, mutated_params

    def _scan_node(self, node: ast.AST, module: ModuleInfo,
                   function: FunctionInfo, local_names: set[str],
                   declared_global: set[str], top_level: bool,
                   params: set[str], effects: list[Effect],
                   mutated_params: set[str]) -> None:
        line = getattr(node, "lineno", 0)
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
            local_names.difference_update(node.names)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._scan_store(target, module, function, local_names,
                                 declared_global, top_level, params,
                                 effects, mutated_params, line)
            return
        if isinstance(node, ast.Call):
            self._scan_call(node, module, function, local_names,
                            declared_global, top_level, params,
                            effects, mutated_params, line)
            return
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            # os.environ["X"] reads.
            if isinstance(node.value, ast.Attribute):
                dotted = _dotted_name(node.value, module)
                if dotted == "os.environ":
                    effects.append(Effect(
                        "env-read", self._env_detail(module, node.slice),
                        line))

    def _scan_store(self, target: ast.expr, module: ModuleInfo,
                    function: FunctionInfo, local_names: set[str],
                    declared_global: set[str], top_level: bool,
                    params: set[str], effects: list[Effect],
                    mutated_params: set[str], line: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                effects.append(Effect(
                    "shared-write",
                    f"module global {target.id!r} of {module.name}", line))
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_store(element, module, function, local_names,
                                 declared_global, top_level, params,
                                 effects, mutated_params, line)
            return
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        root = _root_name(target)
        if root is None:
            return
        if root in params and top_level and isinstance(target, ast.Subscript):
            mutated_params.add(root)
        if root in ("self", "cls"):
            if root == "cls" and function.owner_class is not None:
                effects.append(Effect(
                    "shared-write",
                    f"class attribute of {function.owner_class}", line))
            return
        owner = self._resolve_global(module, root, local_names)
        if owner is not None:
            effects.append(Effect(
                "shared-write",
                f"module-level mutable {root!r} of {owner}", line))
            return
        # Cls.attr = ... on a program class: shared across every instance.
        if isinstance(target, ast.Attribute):
            resolved = self.program.resolve_symbol(
                module.imports.get(root, f"{module.name}.{root}"))
            if resolved in self.program.classes:
                effects.append(Effect(
                    "shared-write",
                    f"class attribute {target.attr!r} of {resolved}", line))

    def _scan_call(self, node: ast.Call, module: ModuleInfo,
                   function: FunctionInfo, local_names: set[str],
                   declared_global: set[str], top_level: bool,
                   params: set[str], effects: list[Effect],
                   mutated_params: set[str], line: int) -> None:
        func = node.func
        # Mutating method on a shared container / a parameter.
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            root = _root_name(func.value)
            if root is not None:
                if root in params and top_level:
                    mutated_params.add(root)
                owner = self._resolve_global(module, root, local_names)
                if owner is not None:
                    effects.append(Effect(
                        "shared-write",
                        f"module-level mutable {root!r} of {owner} "
                        f"(.{func.attr}())", line))
        if isinstance(func, ast.Name) and func.id == "open":
            effects.append(Effect("resource-acquire", "open()", line))
            effects.append(Effect("fs-read", "open()", line))
        resolved = self.program.resolve_call(
            module, node, owner_class=function.owner_class)
        if resolved is None:
            if (isinstance(func, ast.Attribute)
                    and func.attr in _FS_ATTR_CALLS):
                effects.append(Effect(
                    "fs-read", f".{func.attr}() filesystem read", line))
            return
        if resolved in self.program.functions:
            # Param-mutation propagation: a module-level mutable passed
            # into a parameter the callee mutates is a shared write here.
            callee_summary = self.summaries.get(resolved)
            if callee_summary is not None and callee_summary.mutated_params:
                target = self.program.functions[resolved]
                callee_params = target.params
                if callee_params and callee_params[0] in ("self", "cls"):
                    callee_params = callee_params[1:]
                bound: list[tuple[str | None, ast.expr]] = [
                    (callee_params[i] if i < len(callee_params) else None,
                     arg)
                    for i, arg in enumerate(node.args)
                ]
                bound.extend((kw.arg, kw.value) for kw in node.keywords
                             if kw.arg is not None)
                for name, arg in bound:
                    if name not in callee_summary.mutated_params:
                        continue
                    if not isinstance(arg, ast.Name):
                        continue
                    owner = self._resolve_global(module, arg.id, local_names)
                    if owner is not None:
                        effects.append(Effect(
                            "shared-write",
                            f"module-level mutable {arg.id!r} of {owner} "
                            f"(mutated by {resolved.split('.')[-1]})", line))
                    elif arg.id in params and top_level:
                        mutated_params.add(arg.id)
            return
        # External dotted callee: recognized sources only, else cut off.
        if resolved in ("os.getenv", "os.environ.get"):
            detail = (self._env_detail(module, node.args[0])
                      if node.args else "env '?'")
            effects.append(Effect("env-read", detail, line))
        elif resolved in _TIME_SOURCES:
            effects.append(Effect("time-read", f"{resolved}()", line))
        elif resolved in _RNG_SOURCES:
            effects.append(Effect("rng-read", f"{resolved}()", line))
        elif resolved in _FS_SOURCES:
            effects.append(Effect("fs-read", f"{resolved}()", line))
        if (resolved in self.config.resource_factories
                or resolved in self.config.resource_classes):
            effects.append(Effect("resource-acquire", f"{resolved}()", line))

    def _env_detail(self, module: ModuleInfo, node: ast.expr) -> str:
        """``env 'NAME'`` with module-level constants chased.

        ``os.environ.get(KERNEL_ENV_VAR)`` names the variable through a
        top-level constant; resolving it keeps the keyed-variable lists
        in :class:`StaticCheckConfig` usable.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return f"env {node.value!r}"
        if isinstance(node, ast.Name):
            consts = self._module_consts.get(module.name)
            if consts is None:
                consts = {}
                for stmt in module.tree.body:
                    if (isinstance(stmt, ast.Assign)
                            and isinstance(stmt.value, ast.Constant)
                            and isinstance(stmt.value.value, str)):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                consts[target.id] = stmt.value.value
                self._module_consts[module.name] = consts
            value = consts.get(node.id)
            if value is not None:
                return f"env {value!r}"
        return "env '?'"

    # -- fixpoint ------------------------------------------------------------

    def _compute_summaries(self) -> None:
        direct: dict[str, tuple[list[Effect], set[str]]] = {}
        for qualname, function in self.program.functions.items():
            direct[qualname] = self._direct_effects(function)
            effects, mutated = direct[qualname]
            self.summaries[qualname] = EffectSummary(
                qualname=qualname,
                direct=list(effects),
                effects={e.key: e for e in effects},
                mutated_params=frozenset(mutated),
            )
            self.via[qualname] = {}
        for _ in range(20):
            changed = False
            for qualname, function in self.program.functions.items():
                summary = self.summaries[qualname]
                # Re-extract direct effects: param-mutation propagation
                # can add call-site shared-writes once callee summaries
                # have converged further.
                effects, mutated = self._direct_effects(function)
                for effect in effects:
                    if effect.key not in summary.effects:
                        summary.effects[effect.key] = effect
                        summary.direct.append(effect)
                        changed = True
                if not mutated <= summary.mutated_params:
                    summary.mutated_params = (summary.mutated_params
                                              | frozenset(mutated))
                    changed = True
                # Inherit callee effects (resource acquisition stays
                # local: acquiring inside the callee is the callee's
                # business, only *pre-fork bindings* matter upstream).
                for callee in sorted(self.edges.get(qualname, ())):
                    callee_summary = self.summaries.get(callee)
                    if callee_summary is None:
                        continue
                    call_line = min(
                        (site.line
                         for site in self.graph.sites.get(qualname, ())
                         if site.callee == callee
                         or self._constructor_of(site.callee or "")
                         == callee),
                        default=0,
                    )
                    for key, effect in callee_summary.effects.items():
                        if effect.kind == "resource-acquire":
                            continue
                        if key not in summary.effects:
                            summary.effects[key] = Effect(
                                effect.kind, effect.detail, call_line)
                            self.via[qualname][key] = callee
                            changed = True
            if not changed:
                break

    # -- provenance ----------------------------------------------------------

    def effect_path(self, qualname: str, key: tuple[str, str],
                    limit: int = 8) -> str:
        """``f -> g -> h (evidence)``: where an inherited effect lives."""
        hops = [qualname]
        current = qualname
        while len(hops) < limit:
            nxt = self.via.get(current, {}).get(key)
            if nxt is None or nxt in hops:
                break
            hops.append(nxt)
            current = nxt
        origin = self.summaries[hops[-1]].effects.get(key)
        short = [hop.split(".")[-1] if hop.count(".") > 1 else hop
                 for hop in hops]
        chain = " -> ".join(short)
        if origin is not None and hops[-1] != qualname:
            return f"{chain} (line {origin.line})"
        return chain


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Names a store target *binds* in the local scope.

    ``x = ...`` binds ``x``; ``x[k] = ...`` and ``x.f = ...`` mutate an
    existing object and bind nothing — collecting their roots would
    shadow the very module globals the effect scan must see.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)


def _assigned_names(root: ast.AST) -> set[str]:
    """Names bound anywhere under ``root`` (its local scope)."""
    names: set[str] = set()
    for node in ast.walk(root):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                names.update(_binding_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_binding_names(item.optional_vars))
        elif isinstance(node, ast.NamedExpr):
            names.add(node.target.id)
    return names


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _dotted_name(node: ast.Attribute, module: ModuleInfo) -> str | None:
    """``os.environ``-style dotted text with the root resolved."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = module.imports.get(current.id, current.id)
    return ".".join([root, *reversed(parts)])


#: Per-program memo so the four concurrency passes share one fixpoint.
_ANALYSIS_MEMO: dict[tuple[int, str], EffectAnalysis] = {}


def effect_analysis(program: Program,
                    config: StaticCheckConfig) -> EffectAnalysis:
    """The (memoized) effect analysis for one program/config pair.

    Program passes run serially over the same :class:`Program` object;
    keying on its identity keeps the memo correct across programs while
    letting the four concurrency passes pay for one fixpoint, not four.
    The memo is bounded: entries for dead programs are dropped.
    """
    key = (id(program), repr(config))
    cached = _ANALYSIS_MEMO.get(key)
    if cached is not None and cached.program is program:
        return cached
    analysis = EffectAnalysis(program, config)
    _ANALYSIS_MEMO.clear()
    _ANALYSIS_MEMO[key] = analysis
    return analysis
