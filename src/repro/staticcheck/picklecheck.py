"""Picklability & purity pass for the parallel worker boundary.

The parallel engine (PR 3) ships :class:`~repro.parallel.tasks.SimTask`
specs into worker processes and merges :class:`TaskResult`\\ s back;
byte-identical serial-vs-parallel behaviour relies on two properties the
runtime can only discover by crashing (or worse, by silently diverging):

* **picklability** — every field of the task-spec classes must cross
  ``pickle``.  The pass inspects the annotated fields of the configured
  task classes (``StaticCheckConfig.task_classes``) and flags
  annotations naming unpicklable machinery (callables, generators,
  iterators, open files, locks, threads, sockets) and lambda defaults —
  rule ``unpicklable-field``;
* **purity** — code reachable from the worker entry points
  (``StaticCheckConfig.worker_entry_points``, transitively over the
  call graph) must not mutate module-level state: a worker that bumps a
  module global produces results that depend on which process ran which
  chunk, which is exactly the nondeterminism the ordered-merge design
  exists to rule out.  Flagged as ``worker-global-mutation``: ``global``
  writes, and in-place mutation (subscript stores, ``append``/``update``
  /... calls) of names bound to module-level mutable containers.

Suppression: ``# lint: pickle-ok`` on any line of the statement.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .base import Finding, StaticCheckConfig, program_pass
from .callgraph import build_call_graph
from .model import FunctionInfo, ModuleInfo, Program

__all__ = ["PickleAnalysis", "run_picklecheck"]

#: Annotation tokens that cannot cross the pickle boundary.
_UNPICKLABLE_TOKENS = re.compile(
    r"\b(Callable|Generator|Iterator|AsyncIterator|Coroutine|"
    r"IO|TextIO|BinaryIO|FileIO|socket|Socket|Thread|Lock|RLock|"
    r"Condition|Semaphore|Event|Queue|Pool|Executor|ModuleType|"
    r"FrameType|TracebackType)\b"
)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "popleft", "appendleft", "remove", "discard",
    "clear", "sort", "reverse",
})


class PickleAnalysis:
    """Task-class field checks + the worker purity walk."""

    def __init__(self, program: Program, config: StaticCheckConfig) -> None:
        self.program = program
        self.config = config
        self.graph = build_call_graph(program)
        roots = [
            resolved for name in config.worker_entry_points
            if (resolved := program.resolve_symbol(name)) is not None
        ]
        #: Everything a worker process may execute.
        self.worker_scope: set[str] = self.graph.reachable(roots)

    # -- picklability of task-spec fields ------------------------------------

    def field_findings(self) -> Iterator[Finding]:
        """``unpicklable-field`` over the configured task classes."""
        for name in self.config.task_classes:
            qualname = self.program.resolve_symbol(name)
            if qualname is None:
                continue
            info = self.program.classes.get(qualname)
            if info is None:
                continue
            module = self.program.modules[info.module]
            exempt = module.pickle_ok_lines
            for field_name, annotation, default, line in info.fields:
                if line in exempt:
                    continue
                match = _UNPICKLABLE_TOKENS.search(annotation)
                if match:
                    yield Finding(
                        module.path, line, "unpicklable-field",
                        f"task-spec field {field_name!r} of {qualname} is "
                        f"annotated {annotation!r}: {match.group(0)} values "
                        "cannot cross the worker pickle boundary",
                        symbol=qualname, source="pickle",
                    )
                if isinstance(default, ast.Lambda):
                    yield Finding(
                        module.path, line, "unpicklable-field",
                        f"task-spec field {field_name!r} of {qualname} "
                        "defaults to a lambda: lambdas cannot be pickled "
                        "into worker processes",
                        symbol=qualname, source="pickle",
                    )

    # -- worker purity -------------------------------------------------------

    def purity_findings(self) -> Iterator[Finding]:
        """``worker-global-mutation`` over the worker-reachable scope."""
        for qualname in sorted(self.worker_scope):
            function = self.program.functions.get(qualname)
            if function is None or function.is_module_body:
                continue
            module = self.program.modules[function.module]
            yield from self._check_function(function, module)

    def _check_function(self, function: FunctionInfo,
                        module: ModuleInfo) -> Iterator[Finding]:
        exempt = module.pickle_ok_lines
        declared_global: set[str] = set()
        assert isinstance(function.node,
                          (ast.FunctionDef, ast.AsyncFunctionDef))
        # Names shadowed locally are not module-state mutations.
        local_names = {
            target.id
            for node in ast.walk(function.node)
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
            for target in (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
            if isinstance(target, ast.Name)
        }
        local_names.update(function.params)
        mutables = module.module_level_mutables - local_names

        for node in ast.walk(function.node):
            line = getattr(node, "lineno", 0)
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                continue
            if line in exempt:
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    yield from self._check_store(
                        function, module, target, declared_global, mutables,
                        line)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS):
                root = _root_name(node.func.value)
                if root is not None and root in mutables:
                    yield Finding(
                        module.path, line, "worker-global-mutation",
                        f"worker-reachable {function.qualname} mutates "
                        f"module-level {root!r} via .{node.func.attr}(): "
                        "results would depend on process scheduling; pass "
                        "state through the task instead",
                        symbol=function.qualname, source="pickle",
                    )

    def _check_store(self, function: FunctionInfo, module: ModuleInfo,
                     target: ast.expr, declared_global: set[str],
                     mutables: set[str], line: int) -> Iterator[Finding]:
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                yield Finding(
                    module.path, line, "worker-global-mutation",
                    f"worker-reachable {function.qualname} assigns the "
                    f"module global {target.id!r}: worker processes do not "
                    "share it back, so serial and parallel runs diverge",
                    symbol=function.qualname, source="pickle",
                )
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _root_name(target)
            if root is not None and root in mutables:
                yield Finding(
                    module.path, line, "worker-global-mutation",
                    f"worker-reachable {function.qualname} stores into "
                    f"module-level {root!r}: mutation is invisible across "
                    "the process boundary and order-dependent within it",
                    symbol=function.qualname, source="pickle",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_store(
                    function, module, element, declared_global, mutables,
                    line)


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


@program_pass(
    "pickle",
    "task-spec fields must be picklable and worker-reachable code must "
    "not touch module-level mutable state (serial == parallel, always)",
    rule_ids=("unpicklable-field", "worker-global-mutation"),
)
def run_picklecheck(program: Program,
                    config: StaticCheckConfig) -> Iterator[Finding]:
    """The registered pass entry point."""
    analysis = PickleAnalysis(program, config)
    yield from analysis.field_findings()
    yield from analysis.purity_findings()
