"""Framework primitives: findings, severities, pragmas, the rule registry.

Everything the analyzer reports is a :class:`Finding` — one violation of
one named rule, anchored to a file/line and (when known) the enclosing
function, carrying a *stable fingerprint* so a baseline file can suppress
it across unrelated edits.  Rules come in two shapes:

* **module rules** look at one parsed module at a time (the seven rules
  migrated from ``tools/lint_repro.py`` live here — see
  :mod:`repro.staticcheck.rules_lint`);
* **program passes** see the whole :class:`~repro.staticcheck.model.Program`
  at once — symbol tables and the call graph — and can therefore reason
  *interprocedurally* (float-taint, determinism, picklability).

Both register into one :data:`RULE_REGISTRY` via the
:func:`module_rule` / :func:`program_pass` decorators, so the runner,
the CLI, the docs and the SARIF rule catalog all enumerate the same set.

Pragmas
-------

A finding is suppressed in source with a trailing comment pragma
(``# lint: float-ok``, ``# lint: determinism-ok``, ``# lint:
pickle-ok``).  Pragma scope is the **innermost statement** covering the
pragma's line: on a multi-line expression the pragma may sit on *any*
line of the statement — including the closing-paren line — and the whole
statement is exempt.  (The old per-line rule only honoured the exact
line carrying the float literal; see ``exempt_lines``.)
"""

from __future__ import annotations

import hashlib
import io
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    import ast

    from .model import ModuleInfo, Program

__all__ = [
    "Severity",
    "Finding",
    "StaticCheckConfig",
    "RuleSpec",
    "RULE_REGISTRY",
    "module_rule",
    "program_pass",
    "rule_catalog",
    "pragma_lines",
    "exempt_lines",
    "statement_spans",
    "fingerprint_findings",
    "FLOAT_OK_PRAGMA",
    "DETERMINISM_OK_PRAGMA",
    "PICKLE_OK_PRAGMA",
    "INVARIANT_OK_PRAGMA",
    "DEADFLOW_OK_PRAGMA",
    "EFFECT_OK_PRAGMA",
    "TIERS",
]

#: Pragma suppressing the float rules (``no-float``, the taint pass and
#: the budget-range interval pass).
FLOAT_OK_PRAGMA = "lint: float-ok"
#: Pragma suppressing the determinism pass.
DETERMINISM_OK_PRAGMA = "lint: determinism-ok"
#: Pragma suppressing the picklability/purity pass.
PICKLE_OK_PRAGMA = "lint: pickle-ok"
#: Pragma suppressing the invariant-safety exception-path pass.
INVARIANT_OK_PRAGMA = "lint: invariant-ok"
#: Pragma suppressing the dead-flow pass (dead stores / unreachable code).
DEADFLOW_OK_PRAGMA = "lint: deadflow-ok"
#: Pragma family suppressing the concurrency tier.  Bare
#: ``# lint: effect-ok`` silences every concurrency rule on the
#: statement; ``# lint: effect-ok(worker-shared-state)`` silences one
#: rule only (see :func:`repro.staticcheck.concurrency.effect_exempt_lines`
#: — plain substring matching cannot tell the two forms apart).
EFFECT_OK_PRAGMA = "lint: effect-ok"

#: Analysis tiers, in the order the rule catalog presents them.
TIERS = ("lexical", "interprocedural", "dataflow", "concurrency")


class Severity:
    """Finding severities (string constants; SARIF ``level`` values)."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``fingerprint`` is filled in by :func:`fingerprint_findings` — it
    hashes the rule, file, enclosing symbol and message (plus an
    occurrence index for duplicates), *not* the line number, so a
    baseline entry survives unrelated edits above the finding.
    """

    path: Path
    line: int
    rule: str
    message: str
    severity: str = Severity.ERROR
    #: Qualified name of the enclosing function/class, when known.
    symbol: str | None = None
    #: Which analysis produced it (``lint``, ``float-taint``, ...).
    source: str = "lint"
    fingerprint: str = ""

    def describe(self, root: Path | None = None) -> str:
        """``path:line: rule: message`` with ``path`` relative to ``root``."""
        rel = self.path
        if root is not None:
            try:
                rel = self.path.relative_to(root)
            except ValueError:
                pass
        return f"{rel}:{self.line}: {self.rule}: {self.message}"

    def to_dict(self, root: Path | None = None) -> dict:
        """JSON-ready encoding (the ``--format json`` record)."""
        rel = self.path
        if root is not None:
            try:
                rel = self.path.relative_to(root)
            except ValueError:
                pass
        return {
            "path": rel.as_posix(),
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "symbol": self.symbol,
            "source": self.source,
            "fingerprint": self.fingerprint,
        }


def fingerprint_findings(findings: Iterable[Finding],
                         root: Path) -> list[Finding]:
    """Assign stable fingerprints; returns findings sorted for output.

    Identical (rule, path, symbol, message) tuples are disambiguated by
    an occurrence index in line order, so two copies of the same mistake
    in one function keep distinct, stable identities.
    """
    ordered = sorted(
        findings,
        key=lambda f: (f.path.as_posix(), f.line, f.rule, f.message),
    )
    seen: dict[tuple, int] = {}
    out: list[Finding] = []
    for finding in ordered:
        try:
            rel = finding.path.relative_to(root).as_posix()
        except ValueError:
            rel = finding.path.as_posix()
        key = (finding.rule, rel, finding.symbol, finding.message)
        index = seen.get(key, 0)
        seen[key] = index + 1
        material = "|".join((
            "v1", finding.rule, rel, finding.symbol or "-",
            finding.message, str(index),
        ))
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
        out.append(replace(finding, fingerprint=digest))
    return out


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------


def pragma_lines(source: str, pragma: str) -> set[int]:
    """Line numbers whose trailing comment carries ``pragma``."""
    lines: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT and pragma in token.string:
                lines.add(token.start[0])
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass
    return lines


def exempt_lines(tree: "ast.Module", source: str, pragma: str) -> set[int]:
    """All lines exempted by ``pragma``, statement-span aware.

    For every pragma comment, the *innermost* statement whose source
    span covers the pragma line is exempted in full — so a pragma on the
    closing line of a multi-line expression covers the float literal
    three lines up.  The innermost rule keeps a pragma on a ``def`` or
    ``if`` header from silencing the whole suite below it: only when no
    simple statement covers the line does the compound statement win.
    """
    carriers = pragma_lines(source, pragma)
    return statement_spans(tree, carriers)


def statement_spans(tree: "ast.Module", carriers: set[int]) -> set[int]:
    """Expand pragma-carrier lines to their covering statement spans.

    The span half of :func:`exempt_lines`, exposed separately so passes
    with *parametrized* pragmas (``# lint: effect-ok(<rule>)``) can
    classify the carrier lines themselves and still inherit the exact
    statement-span semantics every other pragma has.
    """
    import ast

    if not carriers:
        return set()
    # (span start, span end, last exempted line): a simple statement
    # exempts its whole span; a compound one (def/if/for/...) exempts
    # only its header lines, so the suite below stays checked.
    spans: list[tuple[int, int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            start = node.lineno
            end = node.end_lineno or start
            body = getattr(node, "body", None)
            if (isinstance(body, list) and body
                    and isinstance(body[0], ast.stmt)):
                exempt_end = max(start, body[0].lineno - 1)
            else:
                exempt_end = end
            spans.append((start, end, exempt_end))
    exempt: set[int] = set()
    for line in carriers:
        covering = [(end - start, start, exempt_end)
                    for start, end, exempt_end in spans
                    if start <= line <= end]
        if covering:
            _, start, exempt_end = min(covering)
            exempt.update(range(start, exempt_end + 1))
        else:
            exempt.add(line)  # pragma on a bare/blank line
    return exempt


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticCheckConfig:
    """What the passes treat as sinks, entry points and scopes.

    Paths are repo-root-relative POSIX strings so the same config works
    on the real tree and on synthetic fixture programs (whose "files"
    exist only in memory).
    """

    #: Budget-critical files: float taint must not reach them.
    float_sink_files: tuple[str, ...] = (
        "src/repro/mm/budget.py",
        "src/repro/check/budget_replay.py",
    )
    #: Budget-critical directories (every module beneath them is a sink).
    float_sink_dirs: tuple[str, ...] = ("src/repro/exact",)
    #: Functions executed inside worker processes; everything reachable
    #: from them must be pure and picklable.
    worker_entry_points: tuple[str, ...] = (
        "repro.parallel.tasks.run_task",
    )
    #: Task-spec classes whose fields cross the process boundary.
    task_classes: tuple[str, ...] = (
        "repro.parallel.tasks.SimTask",
        "repro.parallel.tasks.TaskResult",
    )
    #: Attribute names whose call marks a function as event-emitting.
    emit_attr_names: tuple[str, ...] = ("emit", "emit_lazy")
    #: Fully qualified digest helpers (callers become digest-relevant).
    digest_functions: tuple[str, ...] = (
        "repro.check.determinism.canonical_event_bytes",
        "repro.check.determinism.event_stream_digest",
    )
    #: Module holding the telemetry event registry.
    events_module: str = "src/repro/obs/events.py"
    #: Package owning the interval/gap-index internals.
    heap_package: str = "src/repro/heap"
    #: Ledger counter attributes the budget-range pass proves non-negative
    #: (seeded ``[0, +inf)`` at function entry: the inductive hypothesis).
    budget_counter_attrs: tuple[str, ...] = ("_allocated", "_moved")
    #: Paired mutations (open, close): once ``recv.open(...)`` runs, some
    #: ``recv.close(...)`` must run before control can escape the function.
    invariant_pairs: tuple[tuple[str, str], ...] = (
        ("remove", "add"),
        ("free", "place"),
    )
    #: Directories whose modules the invariant-safety pass analyzes
    #: (heap structures and the managers that mutate them).
    invariant_scope_dirs: tuple[str, ...] = (
        "src/repro/heap",
        "src/repro/mm",
    )
    #: Functions dispatched through ``ParallelEngine.map`` (as opposed
    #: to the ``run_task`` entry in ``worker_entry_points``); together
    #: they root the concurrency tier's worker-reachable scope.
    worker_map_functions: tuple[str, ...] = (
        "repro.staticcheck.runner._analyze_module_payload",
        "repro.exact.solver._expand_shard",
    )
    #: Functions whose return value lands in the content-addressed
    #: ``ResultCache`` — every input they (transitively) consult must be
    #: part of the task digest, or the cache serves stale results.
    cached_result_functions: tuple[str, ...] = (
        "repro.parallel.tasks.run_task",
        "repro.parallel.tasks.run_solve_task",
    )
    #: Environment variables that *do* flow into the cache key: resolved
    #: parent-side into a task field (``SimTask.kernel`` carries
    #: ``REPRO_KERNEL``), so a read in cached scope is already keyed.
    cache_keyed_env_vars: tuple[str, ...] = ("REPRO_KERNEL",)
    #: Environment variables declared value-neutral: they may toggle an
    #: internal backend but provably never change a cached result
    #: (``REPRO_SOLVER_NUMPY`` switches the CSR successor kernel, whose
    #: outputs the parity suites pin byte-identical to the reference).
    cache_neutral_env_vars: tuple[str, ...] = ("REPRO_SOLVER_NUMPY",)
    #: External callables whose module-level call binds a process-wide
    #: resource (fork-hostile: the child inherits the parent's copy).
    resource_factories: tuple[str, ...] = (
        "open", "threading.Lock", "threading.RLock",
        "threading.Condition", "threading.Semaphore",
        "threading.BoundedSemaphore", "threading.Event",
        "socket.socket", "random.Random",
    )
    #: Program classes whose instances hold fork-hostile state (locks,
    #: buffers, sinks) when constructed at module level, pre-fork.
    resource_classes: tuple[str, ...] = (
        "repro.obs.trace.Tracer",
        "repro.obs.events.EventBus",
    )
    #: Reducer/merge functions fed by *ordered* parallel results; they
    #: must not iterate unordered containers of worker output.
    merge_functions: tuple[str, ...] = (
        "repro.parallel.engine.ParallelEngine.run",
        "repro.parallel.engine.ParallelEngine.map",
        "repro.parallel.engine.ParallelEngine._adopt_traces",
        "repro.exact.solver.GameSolver._expand_epoch",
        "repro.staticcheck.runner._run_rules",
        "repro.analysis.sweep.simulation_sweep",
        "repro.analysis.experiments._engine_rows",
    )

    def in_invariant_scope(self, relpath: str) -> bool:
        """Whether ``relpath`` is subject to paired-mutation analysis."""
        return any(relpath.startswith(prefix + "/")
                   for prefix in self.invariant_scope_dirs)

    def is_float_sink(self, relpath: str) -> bool:
        """Whether ``relpath`` is budget-critical (exact-arithmetic scope)."""
        return (relpath in self.float_sink_files
                or any(relpath.startswith(prefix + "/")
                       for prefix in self.float_sink_dirs))

    def in_heap_package(self, relpath: str) -> bool:
        """Whether ``relpath`` lives under the heap package."""
        return relpath.startswith(self.heap_package + "/")


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

#: A module rule: (module, config) -> findings.
ModuleRuleFunc = Callable[["ModuleInfo", StaticCheckConfig],
                          Iterator[Finding]]
#: A program pass: (program, config) -> findings.
ProgramPassFunc = Callable[["Program", StaticCheckConfig],
                           Iterator[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    """One registered rule or pass, with its catalog metadata."""

    name: str
    kind: str  # "module" | "program"
    description: str
    func: Callable = field(compare=False)
    #: Rule ids this spec may report (SARIF rule catalog entries).
    rule_ids: tuple[str, ...] = ()
    #: Analysis tier (one of :data:`TIERS`) — how ``--list-rules``
    #: groups the catalog.
    tier: str = "lexical"


#: Every registered rule/pass, in registration order.
RULE_REGISTRY: dict[str, RuleSpec] = {}


def _register(spec: RuleSpec) -> None:
    if spec.name in RULE_REGISTRY:
        raise ValueError(f"duplicate rule registration: {spec.name!r}")
    RULE_REGISTRY[spec.name] = spec


def module_rule(name: str, description: str,
                rule_ids: tuple[str, ...] = (),
                tier: str = "lexical") -> Callable[
                    [ModuleRuleFunc], ModuleRuleFunc]:
    """Register a per-module rule under ``name``."""
    def decorate(func: ModuleRuleFunc) -> ModuleRuleFunc:
        _register(RuleSpec(name, "module", description, func,
                           rule_ids or (name,), tier))
        return func
    return decorate


def program_pass(name: str, description: str,
                 rule_ids: tuple[str, ...] = (),
                 tier: str = "interprocedural") -> Callable[
                     [ProgramPassFunc], ProgramPassFunc]:
    """Register a whole-program pass under ``name``."""
    def decorate(func: ProgramPassFunc) -> ProgramPassFunc:
        _register(RuleSpec(name, "program", description, func,
                           rule_ids or (name,), tier))
        return func
    return decorate


def rule_catalog() -> list[RuleSpec]:
    """Every registered spec (importing the rule modules first)."""
    # Import for side effects: each module registers its rules on import.
    from . import (budget_range, concurrency, determinism, flowpasses,
                   picklecheck, rules_lint, taint)

    _ = (budget_range, concurrency, determinism, flowpasses, picklecheck,
         rules_lint, taint)
    return list(RULE_REGISTRY.values())
