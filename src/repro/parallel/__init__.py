"""Parallel experiment execution: process-pool fan-out + result cache.

The sweep/experiment/figure grids are embarrassingly parallel — every
(params, manager, program) point is an independent deterministic
simulation.  This package runs them that way:

* :class:`~repro.parallel.tasks.SimTask` /
  :class:`~repro.parallel.tasks.TaskResult` — the picklable task and
  result records (results carry the canonical event digest);
* :class:`~repro.parallel.engine.ParallelEngine` — cache check →
  process-pool fan-out → ordered merge; serial and parallel runs of
  the same grid are byte-identical;
* :class:`~repro.parallel.cache.ResultCache` — on-disk entries keyed by
  a digest of (task spec, code version); each entry doubles as a
  ``repro check``-able run directory.

See ``docs/performance.md`` for the architecture and the cache-key
semantics.
"""

from .cache import CACHE_SCHEMA, ResultCache, task_digest
from .engine import EngineStats, ParallelEngine, default_jobs
from .tasks import SimTask, StreamDigest, TaskResult, run_task

__all__ = [
    "CACHE_SCHEMA",
    "EngineStats",
    "ParallelEngine",
    "ResultCache",
    "SimTask",
    "StreamDigest",
    "TaskResult",
    "default_jobs",
    "run_task",
    "task_digest",
]
