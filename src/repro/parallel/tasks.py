"""Task specifications and the worker entry point.

A :class:`SimTask` is the picklable, JSON-able description of one grid
point: parameters, manager name, program short name (see
:mod:`repro.adversary.catalog`) and program options.  Workers receive
tasks — never live objects — rebuild the configuration from the
registries, run it with a private :class:`~repro.obs.events.EventBus`,
and ship back a :class:`TaskResult`: every scalar the analysis layer
needs plus the canonical event-stream digest that anchors
serial-vs-parallel equivalence (see
:func:`repro.check.determinism.event_stream_digest`).

:func:`run_task` is the one function executed in worker processes; it
must stay importable at module top level so the process pool can pickle
references to it.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..adversary.catalog import make_program
from ..adversary.driver import ExecutionResult, run_execution
from ..check.determinism import canonical_event_bytes
from ..core.params import BoundParams
from ..heap.metrics import HeapMetrics
from ..mm.budget import BudgetSnapshot
from ..mm.registry import create_manager
from ..obs.events import EventBus, TelemetryEvent
from ..obs.trace import Tracer

__all__ = [
    "SimTask",
    "TaskResult",
    "SolveTask",
    "SolveResult",
    "StreamDigest",
    "run_task",
    "run_solve_task",
]


@dataclass(frozen=True)
class SimTask:
    """One independent, deterministic simulation to run.

    ``program_options`` is a sorted tuple of ``(name, value)`` pairs
    passed to the program factory (e.g. ``density_exponent``); values
    must be JSON-serializable scalars so the task can be hashed into a
    cache key and rebuilt bit-identically in a worker.
    """

    live_space: int
    max_object: int
    compaction_divisor: float | None
    manager: str
    program: str
    program_options: tuple[tuple[str, Any], ...] = ()
    #: Occupancy backend ("reference" or "bitmap").  Resolved at build
    #: time — not in the worker — so ``REPRO_KERNEL`` set in the parent
    #: applies even when workers are spawned with a clean environment,
    #: and the cache key distinguishes backends (their digests must be
    #: equal, but their wall times must not be conflated).
    kernel: str = "reference"

    @classmethod
    def build(cls, params: BoundParams, manager: str, program: str,
              kernel: str | None = None, **options: Any) -> "SimTask":
        """The convenient constructor: params object + keyword options."""
        from ..heap.kernel import resolve_kernel

        return cls(
            live_space=params.live_space,
            max_object=params.max_object,
            compaction_divisor=params.compaction_divisor,
            manager=manager,
            program=program,
            program_options=tuple(sorted(options.items())),
            kernel=resolve_kernel(kernel),
        )

    @property
    def params(self) -> BoundParams:
        """The task's :class:`~repro.core.params.BoundParams`."""
        return BoundParams(self.live_space, self.max_object,
                           self.compaction_divisor)

    def options_dict(self) -> dict[str, Any]:
        """``program_options`` as a keyword dict."""
        return dict(self.program_options)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding (tuples become lists)."""
        record = asdict(self)
        record["program_options"] = [list(pair)
                                     for pair in self.program_options]
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SimTask":
        """Inverse of :meth:`to_dict`."""
        divisor = record["compaction_divisor"]
        return cls(
            live_space=int(record["live_space"]),
            max_object=int(record["max_object"]),
            compaction_divisor=float(divisor) if divisor is not None else None,
            manager=str(record["manager"]),
            program=str(record["program"]),
            program_options=tuple(
                (str(name), value)
                for name, value in record.get("program_options", ())
            ),
            kernel=str(record.get("kernel", "reference")),
        )


@dataclass(frozen=True)
class TaskResult:
    """Everything a grid cell produces, in picklable/JSON-able form.

    Carries the full scalar surface of
    :class:`~repro.adversary.driver.ExecutionResult` (plus the budget
    snapshot and heap metrics as plain dicts) so cache hits can
    reconstruct a faithful result object without re-running anything,
    and the canonical ``event_digest`` so byte-identical behaviour
    across ``--jobs`` values is checkable.
    """

    task: SimTask
    program_name: str
    manager_name: str
    heap_size: int
    live_peak: int
    total_allocated: int
    total_freed: int
    total_moved: int
    allocation_count: int
    free_count: int
    move_count: int
    budget: dict
    metrics: dict
    event_digest: str
    event_count: int
    wall_seconds: float = field(compare=False)
    from_cache: bool = field(default=False, compare=False)
    #: Span records captured inside the worker (``Span.to_dict`` form),
    #: shipped back for the parent tracer to adopt; None when tracing
    #: was off.  Never persisted to the cache: a cache hit replays the
    #: result, not the timing.
    trace_spans: "list[dict[str, Any]] | None" = field(
        default=None, compare=False)
    #: The worker process that executed the task (lane attribution).
    worker_pid: int | None = field(default=None, compare=False)

    @property
    def waste_factor(self) -> float:
        """``HS / M`` — the paper's figure of merit."""
        return self.heap_size / self.task.live_space

    def to_execution_result(self) -> ExecutionResult:
        """Rebuild a faithful :class:`ExecutionResult` (trace-less)."""
        return ExecutionResult(
            params=self.task.params,
            program_name=self.program_name,
            manager_name=self.manager_name,
            heap_size=self.heap_size,
            live_peak=self.live_peak,
            total_allocated=self.total_allocated,
            total_freed=self.total_freed,
            total_moved=self.total_moved,
            allocation_count=self.allocation_count,
            free_count=self.free_count,
            move_count=self.move_count,
            budget=BudgetSnapshot(**self.budget),
            metrics=HeapMetrics(**self.metrics),
            trace=None,
            wall_seconds=self.wall_seconds,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding (cache ``result.json`` schema).

        Trace fields are transport-only and omitted: a cached entry
        must not replay stale timings as if they were fresh.
        """
        record = asdict(self)
        record["task"] = self.task.to_dict()
        record.pop("trace_spans", None)
        record.pop("worker_pid", None)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TaskResult":
        """Inverse of :meth:`to_dict`; always marks the result cached."""
        return cls(
            task=SimTask.from_dict(record["task"]),
            program_name=str(record["program_name"]),
            manager_name=str(record["manager_name"]),
            heap_size=int(record["heap_size"]),
            live_peak=int(record["live_peak"]),
            total_allocated=int(record["total_allocated"]),
            total_freed=int(record["total_freed"]),
            total_moved=int(record["total_moved"]),
            allocation_count=int(record["allocation_count"]),
            free_count=int(record["free_count"]),
            move_count=int(record["move_count"]),
            budget=dict(record["budget"]),
            metrics=dict(record["metrics"]),
            event_digest=str(record["event_digest"]),
            event_count=int(record["event_count"]),
            wall_seconds=float(record["wall_seconds"]),
            from_cache=True,
        )


@dataclass(frozen=True)
class SolveTask:
    """One exact-game solve: parameters in, the game value out.

    The solve analogue of :class:`SimTask` — a picklable, JSON-able
    spec that hashes into a :class:`~repro.parallel.cache.ResultCache`
    key, so repeated ``repro solve`` invocations replay the cached
    value instead of re-running the attractor.  ``jobs`` and search
    strategy are deliberately *not* part of the spec: they change wall
    time, never the value, and must not fragment the cache.
    """

    live_bound: int
    max_object: int
    power_of_two_sizes: bool = True
    move_budget: int | None = None

    def __post_init__(self) -> None:
        if self.live_bound < 1:
            raise ValueError("live_bound must be at least 1")
        if not 1 <= self.max_object <= self.live_bound:
            raise ValueError("need 1 <= max_object <= live_bound")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding; ``kind`` keeps solve keys disjoint from
        simulation keys in a shared cache directory."""
        return {
            "kind": "exact-solve",
            "live_bound": self.live_bound,
            "max_object": self.max_object,
            "power_of_two_sizes": self.power_of_two_sizes,
            "move_budget": self.move_budget,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SolveTask":
        """Inverse of :meth:`to_dict`."""
        budget = record.get("move_budget")
        return cls(
            live_bound=int(record["live_bound"]),
            max_object=int(record["max_object"]),
            power_of_two_sizes=bool(record.get("power_of_two_sizes", True)),
            move_budget=int(budget) if budget is not None else None,
        )


@dataclass(frozen=True)
class SolveResult:
    """The outcome of one :class:`SolveTask`, cache-shaped.

    ``probes`` is the deterministic ``(heap_words, program_wins)``
    sequence the bracketed search actually ran; ``event_digest`` hashes
    the task, value and probe verdicts (not timings), so identical
    inputs produce identical digests at any ``--jobs`` value — the same
    determinism anchor the simulation tasks carry.
    """

    task: SolveTask
    minimum_heap_words: int
    probes: tuple[tuple[int, bool], ...]
    stats: tuple[dict, ...]
    event_digest: str
    event_count: int
    wall_seconds: float = field(compare=False)
    from_cache: bool = field(default=False, compare=False)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding (cache ``result.json`` schema)."""
        return {
            "task": self.task.to_dict(),
            "minimum_heap_words": self.minimum_heap_words,
            "probes": [list(pair) for pair in self.probes],
            "stats": [dict(entry) for entry in self.stats],
            "event_digest": self.event_digest,
            "event_count": self.event_count,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SolveResult":
        """Inverse of :meth:`to_dict`; always marks the result cached."""
        return cls(
            task=SolveTask.from_dict(record["task"]),
            minimum_heap_words=int(record["minimum_heap_words"]),
            probes=tuple(
                (int(heap), bool(wins)) for heap, wins in record["probes"]
            ),
            stats=tuple(dict(entry) for entry in record["stats"]),
            event_digest=str(record["event_digest"]),
            event_count=int(record["event_count"]),
            wall_seconds=float(record["wall_seconds"]),
            from_cache=True,
        )


def solve_digest(task: SolveTask, value: int,
                 probes: tuple[tuple[int, bool], ...]) -> str:
    """The canonical digest over a solve's deterministic surface."""
    import json

    payload = json.dumps(
        {"task": task.to_dict(), "minimum_heap_words": value,
         "probes": [list(pair) for pair in probes]},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def run_solve_task(task: SolveTask, jobs: int = 1,
                   search: str = "auto") -> SolveResult:
    """Execute one exact solve and package the cacheable result.

    Runs in the parent process — the parallelism (``jobs > 1``) lives
    *inside* the solver's frontier expansion, not across tasks.
    """
    import time

    from ..exact.solver import GameSolver

    engine = None
    if jobs > 1:
        from .engine import ParallelEngine

        engine = ParallelEngine(jobs=jobs)
    started = time.perf_counter()
    solver = GameSolver(
        task.live_bound, task.max_object,
        power_of_two_sizes=task.power_of_two_sizes,
        move_budget=task.move_budget,
        engine=engine,
    )
    value = solver.minimum_heap_words(search=search)
    wall = time.perf_counter() - started
    probes = tuple(
        (entry.heap_words, entry.program_wins) for entry in solver.history
    )
    stats = tuple(entry.as_dict() for entry in solver.history)
    return SolveResult(
        task=task,
        minimum_heap_words=value,
        probes=probes,
        stats=stats,
        event_digest=solve_digest(task, value, probes),
        event_count=sum(entry.orbits_visited for entry in solver.history),
        wall_seconds=wall,
    )


class StreamDigest:
    """Bus sink computing the canonical stream digest incrementally."""

    def __init__(self) -> None:
        self._hasher = hashlib.sha256()
        self.count = 0

    def __call__(self, event: TelemetryEvent) -> None:
        """Deliver one event (the bus-subscriber interface)."""
        self._hasher.update(canonical_event_bytes(event))
        self.count += 1

    def hexdigest(self) -> str:
        """The digest over everything fed so far."""
        return self._hasher.hexdigest()


def _result_from_execution(task: SimTask, result: ExecutionResult,
                           digest: StreamDigest) -> TaskResult:
    return TaskResult(
        task=task,
        program_name=result.program_name,
        manager_name=result.manager_name,
        heap_size=result.heap_size,
        live_peak=result.live_peak,
        total_allocated=result.total_allocated,
        total_freed=result.total_freed,
        total_moved=result.total_moved,
        allocation_count=result.allocation_count,
        free_count=result.free_count,
        move_count=result.move_count,
        budget=asdict(result.budget),
        metrics=asdict(result.metrics),
        event_digest=digest.hexdigest(),
        event_count=digest.count,
        wall_seconds=result.wall_seconds,
    )


def _task_label(task: SimTask) -> str:
    return f"task:{task.manager}/{task.program}"


def run_task(task: SimTask, record_root: str | None = None,
             trace: bool = False) -> TaskResult:
    """Execute one task; the worker-process entry point.

    Every run gets its own :class:`~repro.obs.events.EventBus` with a
    digest sink, so the canonical event digest is computed whether or
    not the run is archived.  With ``record_root`` set, the run is
    additionally persisted as a standard ``repro check``-able run
    directory under ``<record_root>/<cache key>/`` (manifest.json +
    events.jsonl) plus a ``result.json`` the cache reads back — written
    last, so a directory with ``result.json`` is always complete.

    With ``trace=True`` the execution runs under a private (coarse)
    :class:`~repro.obs.trace.Tracer`; the resulting span records travel
    back in ``TaskResult.trace_spans`` for the parent to adopt.
    ``perf_counter_ns`` is CLOCK_MONOTONIC on Linux, shared across
    forked workers, so worker timestamps land on the parent's axis.

    This function roots two statically-checked scopes (``repro
    staticcheck``, concurrency tier): everything reachable from here
    runs in a forked worker, so it must not write shared mutable state
    or touch pre-fork module-level resources (``worker-shared-state``,
    ``fork-unsafe-resource``); and because the returned
    :class:`TaskResult` is cached under the task's cache key, reachable
    code must not read environment variables or runtime globals that
    the key omits (``cache-key-completeness``).
    """
    params = task.params
    program = make_program(task.program, params, **task.options_dict())
    manager = create_manager(task.manager, params)
    digest = StreamDigest()
    tracer = Tracer() if trace else None
    task_span = (tracer.begin_unchecked(_task_label(task), {"pid": os.getpid()})
                 if tracer is not None else None)

    if record_root is None:
        bus = EventBus()
        bus.subscribe(digest)
        if hasattr(program, "bus"):
            program.bus = bus
        result = run_execution(params, program, manager, observer=bus,
                               tracer=tracer, kernel=task.kernel)
        return _finish_task(task, result, digest, tracer, task_span)

    from .cache import RESULT_FILENAME, task_digest  # local: avoid cycle
    from ..obs.telemetry import run_recorded

    key = task_digest(task)
    target = Path(record_root) / key
    result = run_recorded(
        params, program, manager, target,
        extra_config={"task": task.to_dict(), "cache_key": key},
        extra_sinks=[digest],
        tracer=tracer,
        kernel=task.kernel,
    )
    task_result = _finish_task(task, result, digest, tracer, task_span)
    payload = task_result.to_dict()
    payload["cache_key"] = key
    _write_json_atomic(target / RESULT_FILENAME, payload)
    return task_result


def _finish_task(task: SimTask, result: ExecutionResult,
                 digest: StreamDigest, tracer: "Tracer | None",
                 task_span: Any) -> TaskResult:
    """Close the task span and attach the serialized trace, if any."""
    task_result = _result_from_execution(task, result, digest)
    if tracer is None:
        return task_result
    if task_span is not None:
        tracer.end(task_span)
    from dataclasses import replace

    return replace(task_result, trace_spans=tracer.to_dicts(),
                   worker_pid=os.getpid())


def _write_json_atomic(path: Path, payload: dict[str, Any]) -> None:
    """Write JSON via a same-directory temp file + rename."""
    import json
    import os

    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
