"""The parallel execution engine: fan simulation grids over processes.

Every (params, manager, program) grid point in this repository is an
independent, deterministic simulation — the embarrassingly-parallel
shape.  :class:`ParallelEngine` exploits it without changing any
result:

* tasks are checked against the :class:`~repro.parallel.cache.ResultCache`
  first (when configured); hits skip execution entirely;
* misses are executed either in-process (``jobs <= 1`` — no pool, no
  pickling, bit-identical to the historical serial code path) or on a
  ``ProcessPoolExecutor`` with a deterministic chunk size, each worker
  running its simulation with a private event bus;
* results come back **in submission order** regardless of which worker
  finished first, so CSV output, sweep rows and event digests are
  byte-identical across ``--jobs`` values — anchored by the canonical
  event digest each task computes (see ``tests/parallel``).

The pool prefers the ``fork`` start method (cheap on Linux; no
re-import per worker) and falls back to the platform default where
``fork`` is unavailable.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Sequence, Union

from ..obs.trace import MAIN_LANE, Span, Tracer, active_tracer
from .cache import ResultCache
from .tasks import SimTask, TaskResult, run_task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.context import BaseContext

__all__ = ["ParallelEngine", "EngineStats", "default_jobs"]


def default_jobs() -> int:
    """A sensible ``--jobs`` default: the cores this process may use."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class EngineStats:
    """What one :meth:`ParallelEngine.run` call actually did."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    #: SHA-256 over the per-task event digests in submission order —
    #: one value characterizing the whole grid, identical across
    #: ``jobs`` values and across cold/warm cache runs.
    grid_digest: str = ""

    def as_dict(self) -> dict[str, object]:
        """JSON-ready summary (BENCH_JSON / CLI reporting)."""
        return {
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 6),
            "grid_digest": self.grid_digest,
        }


@dataclass
class ParallelEngine:
    """Process-pool fan-out with result caching and ordered merge.

    Parameters
    ----------
    jobs:
        Worker processes; ``<= 1`` executes in-process with no pool.
    cache_dir:
        Optional on-disk result cache.  When set, every executed task is
        also archived as a ``repro check``-able run directory and
        logged in the cache's execution manifest.
    chunk_size:
        Tasks per pool dispatch; ``None`` picks a deterministic value
        balancing dispatch overhead against tail latency.
    tracer:
        Optional parent :class:`~repro.obs.trace.Tracer`.  When enabled,
        every executed task runs under a private worker tracer whose
        spans ship back through ``TaskResult.trace_spans`` and are
        adopted here — one lane per worker process — so a parallel
        sweep's timeline renders next to a serial run's.  Digest-neutral
        like all tracing.

    Statically enforced contracts (``repro staticcheck``, concurrency
    tier): code reachable from the worker entry points must not write
    shared state (``worker-shared-state``) or touch module-level
    resources created before the fork (``fork-unsafe-resource``), and
    the merge paths here — :meth:`run`, :meth:`map`,
    ``_adopt_traces`` — must not iterate unordered containers of
    worker output (``merge-order``); together they are the static half
    of the byte-identical serial/parallel guarantee.
    """

    jobs: int = 1
    cache_dir: "Union[str, os.PathLike[str], None]" = None
    chunk_size: int | None = None
    tracer: "Tracer | None" = None
    #: Stats of the most recent :meth:`run` (reset each call).
    stats: EngineStats = field(default_factory=EngineStats)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.cache = (ResultCache(self.cache_dir)
                      if self.cache_dir is not None else None)
        self.tracer = active_tracer(self.tracer)

    def run(self, tasks: Sequence[SimTask]) -> list[TaskResult]:
        """Execute (or recall) every task; results in submission order."""
        start = time.perf_counter()
        tasks = list(tasks)
        tracer = self.tracer
        engine_span = (tracer.begin_unchecked("engine.run",
                                              {"tasks": len(tasks),
                                               "jobs": self.jobs})
                       if tracer is not None else None)
        evictions_before = (self.cache.evictions
                            if self.cache is not None else 0)
        results: list[TaskResult | None] = [None] * len(tasks)
        pending: list[SimTask] = []
        pending_slots: list[int] = []
        for slot, task in enumerate(tasks):
            cached = self.cache.get(task) if self.cache is not None else None
            if cached is not None:
                results[slot] = cached
            else:
                pending.append(task)
                pending_slots.append(slot)

        executed: list[TaskResult] = []
        if pending:
            record_root = (str(self.cache.directory)
                           if self.cache is not None else None)
            executed = self._execute(pending, record_root)
            for slot, result in zip(pending_slots, executed):
                results[slot] = result
            if self.cache is not None:
                self.cache.record_executions(executed)

        if tracer is not None:
            self._adopt_traces(tracer, executed, engine_span)

        # The merge loop filled every slot: cache hits up front, executed
        # results by pending_slots.
        merged = [result for result in results if result is not None]
        grid = hashlib.sha256()
        for result in merged:
            grid.update(result.event_digest.encode())
        evictions = (self.cache.evictions - evictions_before
                     if self.cache is not None else 0)
        if tracer is not None and engine_span is not None:
            tracer.end(engine_span)
        self.stats = EngineStats(
            total=len(tasks),
            executed=len(executed),
            cache_hits=len(tasks) - len(pending),
            cache_misses=len(pending),
            cache_evictions=evictions,
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - start,
            grid_digest=grid.hexdigest(),
        )
        return merged

    def map(self, func, items: Sequence) -> list:
        """Ordered generic fan-out: ``[func(x) for x in items]`` on the pool.

        The simulation-agnostic sibling of :meth:`run` — no result cache,
        no tracing, just the engine's pool policy (fork context, ordered
        merge, deterministic chunking).  ``func`` must be picklable
        (module-level, or a :func:`functools.partial` of one).  With
        ``jobs <= 1`` or a single item it executes in-process, so callers
        get byte-identical results across ``--jobs`` values for free.
        """
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [func(item) for item in items]
        workers = min(self.jobs, len(items))
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, len(items) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            return list(pool.map(func, items, chunksize=chunk))

    # Internal ---------------------------------------------------------------

    def _adopt_traces(self, tracer: Tracer, executed: list[TaskResult],
                      engine_span: Span | None) -> None:
        """Re-root worker span trees locally, one lane per worker pid.

        Lane ids are assigned by pid order of first appearance (1..N);
        the in-process path (``jobs <= 1``) executes in the parent pid,
        which still gets its own worker lane so serial and parallel
        sweeps render uniformly.
        """
        lanes: dict[int, int] = {}
        for result in executed:
            if not result.trace_spans:
                continue
            pid = result.worker_pid or 0
            lane = lanes.setdefault(pid, MAIN_LANE + 1 + len(lanes))
            tracer.adopt(result.trace_spans, lane=lane, parent=engine_span)

    def _execute(self, pending: list[SimTask],
                 record_root: str | None) -> list[TaskResult]:
        worker = partial(run_task, record_root=record_root,
                         trace=self.tracer is not None)
        if self.jobs <= 1 or len(pending) == 1:
            return [worker(task) for task in pending]
        workers = min(self.jobs, len(pending))
        chunk = self.chunk_size
        if chunk is None:
            # Deterministic sharding: about four dispatches per worker,
            # which amortizes pickling without starving the tail.
            chunk = max(1, len(pending) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            # Executor.map preserves submission order by construction.
            return list(pool.map(worker, pending, chunksize=chunk))


def _pool_context() -> "BaseContext":
    """Prefer fork (cheap, no re-import); fall back where unavailable."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-POSIX
