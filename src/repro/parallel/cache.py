"""The on-disk result cache and its run manifest.

Layout of a cache directory::

    <cache_dir>/
      manifest.jsonl        # one line per *executed* simulation, appended
      <key>/                # one entry per distinct task
        manifest.json       # standard run manifest (repro check works)
        events.jsonl        # the run's full event stream
        result.json         # TaskResult record (written last = complete)

The key is :func:`task_digest`: SHA-256 over the canonical JSON of the
task spec (``BoundParams`` triple, manager name, program name +
options) together with the code version — ``repro.__version__`` plus
:data:`CACHE_SCHEMA` — so a release that changes simulator semantics
invalidates every stale entry instead of replaying it.

Because every entry doubles as a recorded run directory, ``repro check
<cache_dir>/<key>`` re-verifies a cached point end to end (invariant
checkers plus the stored ``event_digest``), and ``repro report``
renders it.  The top-level ``manifest.jsonl`` counts real executions:
a warm re-run of a grid leaves it untouched, which is exactly what the
equivalence tests assert.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Union

from .tasks import SimTask, SolveResult, SolveTask, TaskResult

_AnyTask = Union[SimTask, SolveTask]
_AnyResult = Union[TaskResult, SolveResult]

__all__ = [
    "CACHE_SCHEMA",
    "RESULT_FILENAME",
    "CACHE_MANIFEST_FILENAME",
    "task_digest",
    "ResultCache",
]

#: Bump whenever simulator semantics change in a way that invalidates
#: previously cached results without a package-version bump.
CACHE_SCHEMA = 1

RESULT_FILENAME = "result.json"
CACHE_MANIFEST_FILENAME = "manifest.jsonl"

_PathLike = Union[str, Path]


def _code_version() -> str:
    from .. import __version__

    return f"{__version__}+cache{CACHE_SCHEMA}"


def task_digest(task: _AnyTask, *, code_version: str | None = None) -> str:
    """The cache key: SHA-256 of (task spec, code version)."""
    record = task.to_dict()
    record["code_version"] = (code_version if code_version is not None
                              else _code_version())
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Digest-keyed persistence of :class:`TaskResult` records.

    The cache never *writes* entry directories itself — workers do, via
    :func:`repro.parallel.tasks.run_task` with ``record_root`` — it
    resolves keys, reads completed entries back, and appends the
    execution manifest from the parent process (one writer, no append
    races).

    ``result_type`` selects the record class entries decode into:
    :class:`~repro.parallel.tasks.TaskResult` (simulations, the
    default) or :class:`~repro.parallel.tasks.SolveResult` (exact-game
    solves).  Any type with ``from_dict`` / a ``task`` field /
    ``event_digest`` / ``event_count`` / ``wall_seconds`` fits; task
    specs embed a ``kind`` so the two families never share a key even
    in one directory.
    """

    def __init__(self, directory: _PathLike,
                 result_type: "type[TaskResult] | type[SolveResult]"
                 = TaskResult) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.result_type = result_type
        #: Lookup counters for this instance's lifetime.  ``evictions``
        #: counts entries *deleted* by :meth:`get` because they were
        #: unreadable or did not match their key (tampering / digest
        #: collision); a plain absent entry is only a miss.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def key_for(self, task: _AnyTask) -> str:
        """The task's cache key."""
        return task_digest(task)

    def entry_dir(self, task: _AnyTask) -> Path:
        """Where the task's run directory lives (existing or not)."""
        return self.directory / self.key_for(task)

    def get(self, task: _AnyTask) -> _AnyResult | None:
        """The cached result, or None on a miss / incomplete entry.

        Unreadable or mismatched entries are *evicted* (the entry
        directory is deleted) so the subsequent execution can repopulate
        the slot instead of colliding with the stale files forever.
        """
        entry = self.entry_dir(task)
        path = entry / RESULT_FILENAME
        if not path.is_file():
            self.misses += 1
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            result = self.result_type.from_dict(record)
        except (ValueError, KeyError, TypeError):
            self._evict(entry)
            return None
        if result.task != task:
            # A digest collision or a tampered entry; evict rather than
            # return someone else's numbers.
            self._evict(entry)
            return None
        self.hits += 1
        return result

    def _evict(self, entry: Path) -> None:
        """Delete one corrupt/mismatched entry directory, counting it."""
        import shutil

        shutil.rmtree(entry, ignore_errors=True)
        self.evictions += 1
        self.misses += 1

    # The execution manifest ------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """The append-only execution log."""
        return self.directory / CACHE_MANIFEST_FILENAME

    def record_executions(self, results: "list[TaskResult] | list[SolveResult]") -> None:
        """Append one manifest line per freshly executed result."""
        if not results:
            return
        with self.manifest_path.open("a", encoding="utf-8") as handle:
            for result in results:
                handle.write(json.dumps({
                    "key": self.key_for(result.task),
                    "task": result.task.to_dict(),
                    "event_digest": result.event_digest,
                    "event_count": result.event_count,
                    "wall_seconds": result.wall_seconds,
                    "created_unix": time.time(),
                }, sort_keys=True))
                handle.write("\n")

    def execution_count(self) -> int:
        """How many simulations this cache directory has ever executed."""
        if not self.manifest_path.is_file():
            return 0
        with self.manifest_path.open("r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    def entry_dirs(self) -> list[Path]:
        """Every complete entry directory, sorted by key."""
        return sorted(
            child for child in self.directory.iterdir()
            if child.is_dir() and (child / RESULT_FILENAME).is_file()
        )
