"""The lemma ledger: the proof's quantities, measured on executions.

The proof of Theorem 1 is an accounting argument over six quantities:

* ``u(t_first)`` / ``u(t_finish)`` — the potential at the stage boundary
  and at the end (Definitions 4.3/4.4);
* ``s1`` / ``s2`` — words allocated in Stage I / Stage II;
* ``q1`` / ``q2`` — words compacted in Stage I / Stage II.

:class:`LemmaLedger` is a :class:`~repro.adversary.pf_program.PFProgram`
observer that captures all six from a live execution, together with the
three inequalities they must satisfy:

* Lemma 4.5:  ``u_first >= M (ell+2)/2 - 2^ell q1 - n/4``
* Claim 4.11: ``s1 <= M (ell + 1 - S(ell)/2)``
* Lemma 4.6:  ``u_finish - u_first >= (3/4) s2 - 2^ell q2``

and the budget identity ``q1 + q2 <= (s1 + s2)/c``.  The integration
tests assert them on real runs — the closest a reproduction can get to
"running the proof".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.series import stage1_series_float
from .potential import potential_twice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pf_program import PFProgram

__all__ = ["LemmaReport", "LemmaLedger"]


@dataclass(frozen=True)
class LemmaReport:
    """The six quantities plus derived checks."""

    live_bound: int
    max_object: int
    divisor: float
    density_exponent: int
    u_first: float
    u_finish: float
    s1: int
    s2: int
    q1: int
    q2: int

    # Inequality slacks (>= 0 when the statement holds) -------------------

    @property
    def lemma_45_floor(self) -> float:
        """Lemma 4.5's right-hand side."""
        return (
            self.live_bound * (self.density_exponent + 2) / 2.0
            - 2.0**self.density_exponent * self.q1
            - self.max_object / 4.0
        )

    @property
    def lemma_45_slack(self) -> float:
        """``u_first`` minus its floor."""
        return self.u_first - self.lemma_45_floor

    @property
    def claim_411_ceiling(self) -> float:
        """Claim 4.11's allocation cap for Stage I."""
        ell = self.density_exponent
        return self.live_bound * (ell + 1 - stage1_series_float(ell) / 2.0)

    @property
    def claim_411_slack(self) -> float:
        """Cap minus actual ``s1``."""
        return self.claim_411_ceiling - self.s1

    @property
    def lemma_46_floor(self) -> float:
        """Lemma 4.6's growth floor."""
        return 0.75 * self.s2 - 2.0**self.density_exponent * self.q2

    @property
    def lemma_46_slack(self) -> float:
        """Actual growth minus the floor."""
        return (self.u_finish - self.u_first) - self.lemma_46_floor

    @property
    def budget_slack(self) -> float:
        """``(s1+s2)/c - (q1+q2)`` — must be non-negative by enforcement."""
        return (self.s1 + self.s2) / self.divisor - (self.q1 + self.q2)

    def all_hold(self, tolerance: float = 1e-9) -> bool:
        """Whether every inequality holds (the executable proof check)."""
        return (
            self.lemma_45_slack >= -tolerance
            and self.claim_411_slack >= -tolerance
            and self.lemma_46_slack >= -tolerance
            and self.budget_slack >= -tolerance
        )

    def describe(self) -> str:
        """A multi-line ledger rendering."""
        lines = [
            f"ell={self.density_exponent}  M={self.live_bound}  "
            f"n={self.max_object}  c={self.divisor:g}",
            f"u_first  = {self.u_first:10.1f}  (floor {self.lemma_45_floor:10.1f},"
            f" slack {self.lemma_45_slack:+.1f})",
            f"s1       = {self.s1:10d}  (cap   {self.claim_411_ceiling:10.1f},"
            f" slack {self.claim_411_slack:+.1f})",
            f"u growth = {self.u_finish - self.u_first:10.1f}  "
            f"(floor {self.lemma_46_floor:10.1f}, slack {self.lemma_46_slack:+.1f})",
            f"q1+q2    = {self.q1 + self.q2:10d}  "
            f"(budget {(self.s1 + self.s2) / self.divisor:10.1f},"
            f" slack {self.budget_slack:+.1f})",
        ]
        return "\n".join(lines)


class LemmaLedger:
    """PFProgram observer capturing the proof quantities.

    Attach with ``PFProgram(params, observer=LemmaLedger(driver))`` — it
    needs the driver to read cumulative allocation/move counters at the
    stage boundary.
    """

    def __init__(self, driver) -> None:  # noqa: ANN001 - ExecutionDriver
        self.driver = driver
        self._stage_boundary: dict[str, float] = {}
        self._final: dict[str, float] = {}
        self.report: LemmaReport | None = None

    def _u(self, program: "PFProgram") -> float:
        return potential_twice(
            program.association,
            program.current_exponent,
            program.density_exponent,
            program.params.max_object,
        ) / 2.0

    def on_association_initialized(self, program: "PFProgram") -> None:
        heap = self.driver.heap
        self._stage_boundary = {
            "u": self._u(program),
            "allocated": heap.total_allocated,
            "moved": heap.total_moved,
        }

    def on_finish(self, program: "PFProgram") -> None:
        heap = self.driver.heap
        boundary = self._stage_boundary
        divisor = program.params.compaction_divisor
        assert divisor is not None
        self.report = LemmaReport(
            live_bound=program.params.live_space,
            max_object=program.params.max_object,
            divisor=divisor,
            density_exponent=program.density_exponent,
            u_first=boundary["u"],
            u_finish=self._u(program),
            s1=int(boundary["allocated"]),
            s2=int(heap.total_allocated - boundary["allocated"]),
            q1=int(boundary["moved"]),
            q2=int(heap.total_moved - boundary["moved"]),
        )
