"""The program catalog: short names ⇔ constructible program instances.

Three subsystems need to rebuild an adversary/workload from a plain
string: the CLI (``repro simulate --program pf``), the determinism
replayer (``repro check --replay``) and the parallel execution engine
(worker processes receive a :class:`~repro.parallel.tasks.SimTask`, not
a live object).  This module is the single registry they all share, so
a new program is wired everywhere by adding one factory entry.

Keys are the CLI's short names (``"pf"``, ``"robson"``, ``"churn"``,
…).  Every factory takes a :class:`~repro.core.params.BoundParams`
plus optional keyword arguments and returns a *deterministic* program:
the adversaries by construction, the workloads by seeded RNG — the
property the result cache and the digest checks rest on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .base import AdversaryProgram
from .checkerboard import CheckerboardProgram
from .pf_program import PFProgram
from .robson_program import RobsonProgram
from .workloads import (
    BurstyWorkload,
    ExponentialChurnWorkload,
    PhasedWorkload,
    RandomChurnWorkload,
    SawtoothWorkload,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.params import BoundParams

__all__ = [
    "PROGRAM_FACTORIES",
    "program_names",
    "make_program",
    "program_key_for",
]

ProgramFactory = Callable[..., AdversaryProgram]

#: Short name -> factory.  The order here is the CLI's listing order.
PROGRAM_FACTORIES: dict[str, ProgramFactory] = {
    "pf": PFProgram,
    "robson": RobsonProgram,
    "checkerboard": CheckerboardProgram,
    "churn": RandomChurnWorkload,
    "sawtooth": SawtoothWorkload,
    "phased": PhasedWorkload,
    "exponential-churn": ExponentialChurnWorkload,
    "bursty": BurstyWorkload,
}

#: Reverse map: program class -> short name (for turning an instance
#: back into a task spec).
_KEY_BY_CLASS = {factory: key for key, factory in PROGRAM_FACTORIES.items()}


def program_names() -> list[str]:
    """Registered short names, in listing order."""
    return list(PROGRAM_FACTORIES)


def make_program(name: str, params: "BoundParams",
                 **options: object) -> AdversaryProgram:
    """Build a fresh program by short name (raises ``KeyError`` style
    ``ValueError`` listing what exists)."""
    factory = PROGRAM_FACTORIES.get(name)
    if factory is None:
        known = ", ".join(sorted(PROGRAM_FACTORIES))
        raise ValueError(f"unknown program {name!r}; known: {known}")
    return factory(params, **options)


def program_key_for(program: AdversaryProgram) -> str | None:
    """The short name that rebuilds ``program``'s class, if registered.

    Only exact class matches count: a subclass may carry extra state the
    factory would not reproduce, so it cannot be shipped to a worker by
    name.
    """
    return _KEY_BY_CLASS.get(type(program))
