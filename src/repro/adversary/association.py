"""Object ↔ chunk association — the bookkeeping behind Stage II.

The program :math:`P_F` explicitly maintains, for each chunk ``D`` of the
current partition, the set :math:`O_D` of objects associated with it
(§4, Figure 4).  The rules:

* an object is associated *whole* with one chunk, or split into two
  *halves* associated with two chunks (each half weighs ``|o| / 2``);
* association survives compaction (the object becomes a *residue*: it is
  physically dead, but its weight still counts toward the chunk until a
  new object is allocated over the chunk, or the program's de-allocation
  procedure releases it);
* at a step change each pair of sibling chunks merges, and their
  association sets take a union (two halves of one object landing in the
  same parent re-combine into a whole);
* the set ``E`` marks *middle* chunks (Definition 4.12): fully covered
  by a fresh object but carrying none of its halves; membership ends at
  the next step change or when an object is associated with the chunk.

Weights use integers scaled by 2 (``HALF = 1``, ``WHOLE = 2``) so chunk
weights are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..heap.chunks import ChunkId

__all__ = ["AssociationMap", "AssociationEntry", "HALF", "WHOLE"]

HALF = 1
WHOLE = 2


@dataclass
class AssociationEntry:
    """One object's association state."""

    object_id: int
    size: int
    #: chunk -> HALF or WHOLE (at most two chunks, both HALF, or one WHOLE)
    chunks: dict[ChunkId, int]
    #: False once the object is physically dead but still associated.
    live: bool = True

    @property
    def weight_words_twice(self) -> int:
        """Total associated weight, doubled (exact integer)."""
        return sum(self.chunks.values()) * self.size


class AssociationMap:
    """The program's explicit ``O_D`` bookkeeping plus the ``E`` set."""

    def __init__(self) -> None:
        self._entries: dict[int, AssociationEntry] = {}
        self._by_chunk: dict[ChunkId, dict[int, int]] = {}
        self._middle: set[ChunkId] = set()

    # Introspection ----------------------------------------------------------

    def entry(self, object_id: int) -> AssociationEntry | None:
        """The association entry for an object, if any."""
        return self._entries.get(object_id)

    def chunk_members(self, chunk: ChunkId) -> dict[int, int]:
        """``object_id -> HALF|WHOLE`` for a chunk (copy)."""
        return dict(self._by_chunk.get(chunk, ()))

    def chunk_weight_twice(self, chunk: ChunkId) -> int:
        """``2 * sum(fraction * |o|)`` over the chunk's associations."""
        members = self._by_chunk.get(chunk)
        if not members:
            return 0
        return sum(
            fraction * self._entries[oid].size
            for oid, fraction in members.items()
        )

    def chunks(self) -> list[ChunkId]:
        """Every chunk with at least one association."""
        return list(self._by_chunk)

    def is_middle(self, chunk: ChunkId) -> bool:
        """Whether the chunk is currently in ``E``."""
        return chunk in self._middle

    def middle_chunks(self) -> set[ChunkId]:
        """A copy of the ``E`` set."""
        return set(self._middle)

    def object_count(self) -> int:
        """Number of objects with live association entries."""
        return len(self._entries)

    # Mutations ---------------------------------------------------------------

    def associate_whole(self, object_id: int, size: int, chunk: ChunkId) -> None:
        """Associate a (new) object entirely with one chunk."""
        self._new_entry(object_id, size, {chunk: WHOLE})

    def associate_halves(
        self, object_id: int, size: int, first: ChunkId, second: ChunkId
    ) -> None:
        """Associate half the object with each of two distinct chunks."""
        if first == second:
            raise ValueError("halves must go to two distinct chunks")
        self._new_entry(object_id, size, {first: HALF, second: HALF})

    def _new_entry(
        self, object_id: int, size: int, chunks: dict[ChunkId, int]
    ) -> None:
        if object_id in self._entries:
            raise ValueError(f"object {object_id} is already associated")
        if size <= 0:
            raise ValueError("size must be positive")
        entry = AssociationEntry(object_id, size, dict(chunks))
        self._entries[object_id] = entry
        for chunk, fraction in chunks.items():
            self._by_chunk.setdefault(chunk, {})[object_id] = fraction
            self._middle.discard(chunk)  # association ends E membership

    def mark_residue(self, object_id: int) -> None:
        """The object died (compacted away) but stays associated."""
        entry = self._entries.get(object_id)
        if entry is not None:
            entry.live = False

    def remove_object(self, object_id: int) -> None:
        """The program de-allocated the object: association ends."""
        entry = self._entries.pop(object_id, None)
        if entry is None:
            return
        for chunk in entry.chunks:
            members = self._by_chunk.get(chunk)
            if members is not None:
                members.pop(object_id, None)
                if not members:
                    del self._by_chunk[chunk]

    def transfer_half(self, object_id: int, away_from: ChunkId) -> ChunkId:
        """Move a half off ``away_from``; the object becomes whole at the
        chunk holding its other half (Algorithm 1, line 13).  Returns
        that chunk so the caller can re-evaluate it.
        """
        entry = self._entries.get(object_id)
        if entry is None:
            raise KeyError(f"object {object_id} is not associated")
        if entry.chunks.get(away_from) != HALF:
            raise ValueError(
                f"object {object_id} has no half on {away_from}"
            )
        others = [c for c in entry.chunks if c != away_from]
        if len(others) != 1:
            raise ValueError(f"object {object_id} is not split across two chunks")
        other = others[0]
        del entry.chunks[away_from]
        entry.chunks[other] = WHOLE
        members = self._by_chunk.get(away_from)
        if members is not None:
            members.pop(object_id, None)
            if not members:
                del self._by_chunk[away_from]
        self._by_chunk[other][object_id] = WHOLE
        return other

    def clear_chunk(self, chunk: ChunkId) -> list[int]:
        """Drop every association *on this chunk* (a fresh object was
        placed over it; line 14 replaces ``O_D`` outright).

        An object half-associated with another chunk keeps that other
        half: dropping it would shrink the other chunk's weight, i.e.
        decrease the potential — exactly what Claim 4.16 forbids.  (The
        surviving lone half is how the paper avoids double counting the
        move of a border object when both its chunks get reused.)
        Only residues may be cleared: a fully covered chunk cannot hold
        a live associated object (live objects physically intersect
        their chunks — Claim 4.15.3 — and placement needs free words),
        so a live member here means the caller's bookkeeping is wrong.
        Returns the object ids whose association ended entirely.
        """
        members = self._by_chunk.get(chunk)
        if members:
            for object_id in members:
                if self._entries[object_id].live:
                    raise ValueError(
                        f"cannot clear {chunk}: object {object_id} is live"
                    )
        members = self._by_chunk.pop(chunk, None)
        self._middle.discard(chunk)
        if not members:
            return []
        fully_released = []
        for object_id in members:
            entry = self._entries[object_id]
            entry.chunks.pop(chunk, None)
            if not entry.chunks:
                del self._entries[object_id]
                fully_released.append(object_id)
        return fully_released

    def mark_middle(self, chunk: ChunkId) -> None:
        """Put a chunk into ``E`` (it must carry no associations)."""
        if self._by_chunk.get(chunk):
            raise ValueError(f"{chunk} has associations; cannot join E")
        self._middle.add(chunk)

    def merge_step(self) -> None:
        """Step change: re-key every association to the parent partition.

        Sibling halves of one object re-combine to a whole; the ``E`` set
        empties (Definition 4.12: membership ends at a step change).
        """
        self._middle.clear()
        new_by_chunk: dict[ChunkId, dict[int, int]] = {}
        for entry in self._entries.values():
            merged: dict[ChunkId, int] = {}
            for chunk, fraction in entry.chunks.items():
                parent = chunk.parent
                merged[parent] = min(WHOLE, merged.get(parent, 0) + fraction)
            entry.chunks = merged
            for parent, fraction in merged.items():
                new_by_chunk.setdefault(parent, {})[entry.object_id] = fraction
        self._by_chunk = new_by_chunk

    # Validation ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Claim 4.15 structure: forward and reverse maps agree; each
        object is whole on one chunk or half on exactly two."""
        for object_id, entry in self._entries.items():
            fractions = sorted(entry.chunks.values())
            # [HALF] arises only for residues whose other chunk was
            # cleared by a fresh allocation; live objects are always
            # whole-on-one or half-on-two (Claim 4.15).
            assert fractions in ([WHOLE], [HALF, HALF], [HALF]), (
                f"object {object_id} has malformed association {entry.chunks}"
            )
            if entry.live:
                assert fractions != [HALF], (
                    f"live object {object_id} has a dangling half"
                )
            for chunk, fraction in entry.chunks.items():
                assert self._by_chunk.get(chunk, {}).get(object_id) == fraction
        for chunk, members in self._by_chunk.items():
            assert members, f"empty member table for {chunk}"
            assert chunk not in self._middle, (
                f"{chunk} is in E but has associations"
            )
            for object_id, fraction in members.items():
                assert self._entries[object_id].chunks.get(chunk) == fraction
