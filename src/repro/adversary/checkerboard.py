"""The folklore checkerboard adversary — a baseline for P_F.

The classic fragmentation argument taught before Robson's: fill the
heap with objects of size ``s``, free every other one, then ask for
objects of size ``2s`` (which fit in none of the holes), and repeat with
doubling sizes.  Against a non-moving manager this forces a waste factor
of about 1.5x per doubling round (much weaker than Robson's
``log n / 2``-ish factor, and weaker still than P_F under compaction),
which is exactly why it is the right baseline: the experiments show how
much of the paper's bound comes from the *construction*, not from
adversarial freedom per se.
"""

from __future__ import annotations

from ..core.params import BoundParams
from .base import AdversaryProgram, ProgramView

__all__ = ["CheckerboardProgram"]


class CheckerboardProgram(AdversaryProgram):
    """Fill, free-every-other, double the request size; repeat."""

    name = "checkerboard"

    def __init__(self, params: BoundParams, *, start_size: int = 1) -> None:
        if start_size < 1:
            raise ValueError("start_size must be at least 1")
        if start_size > params.max_object:
            raise ValueError("start_size exceeds the n contract")
        self.params = params
        self.start_size = start_size

    def run(self, view: ProgramView) -> None:
        moved_away: set[int] = set()

        def on_move(obj, old, new):  # noqa: ANN001 - listener signature
            # Keep it simple: drop moved objects, like P_F does.
            view.free(obj.object_id)
            moved_away.add(obj.object_id)

        view.set_move_listener(on_move)
        size = self.start_size
        survivors: list[int] = []
        while size <= self.params.max_object:
            view.mark(f"checkerboard round size={size}")
            # Fill the remaining live budget with `size`-word objects.
            batch: list[int] = []
            while view.live_words + size <= view.live_space_bound:
                obj = view.allocate(size)
                if view.is_live(obj.object_id):
                    batch.append(obj.object_id)
            # Free every other one (keep odd positions: the classic
            # checkerboard leaves holes exactly one object wide).
            for index, object_id in enumerate(batch):
                if index % 2 == 0 and view.is_live(object_id):
                    view.free(object_id)
                elif view.is_live(object_id):
                    survivors.append(object_id)
            size *= 2
        view.set_move_listener(None)
