"""Trace replay: re-run a recorded request stream against a new manager.

A recorded :class:`~repro.adversary.trace.TraceLog` contains the
program-visible requests (allocs with sizes, frees by object id).  The
adversaries are *adaptive* — replaying their requests against a
different manager is not the same as running them afresh (they would
have chosen differently) — but replay is exactly what is needed for:

* A/B comparisons of managers on identical request streams (the classic
  allocator-benchmark methodology);
* regression debugging: shrink a failing adversarial run and replay it
  deterministically;
* measuring how much of an adversary's damage is *adaptivity* vs the
  request shape alone (see ``bench_adversary_comparison``).

Object ids in the recorded trace are remapped in allocation order, so a
trace can be replayed against any manager regardless of how ids were
assigned originally.  Frees of objects that died implicitly in the
original run (moved-then-freed by the adversary's listener) are replayed
as regular frees; replayed managers' own moves do *not* trigger
re-entrant frees (the replay program is not adaptive), so replay is most
faithful for non-moving managers — a caveat the docstring of
:class:`ReplayProgram` carries into the API.
"""

from __future__ import annotations

from ..core.params import BoundParams
from .base import AdversaryProgram, ProgramView
from .trace import TraceLog

__all__ = ["ReplayProgram", "replay_against"]


class ReplayProgram(AdversaryProgram):
    """Replays the alloc/free request stream of a recorded trace."""

    name = "replay"

    def __init__(self, trace: TraceLog) -> None:
        self.requests = list(trace.replay_requests())
        self.skipped_frees = 0

    def run(self, view: ProgramView) -> None:
        # Original object ids are allocation-ordered (the driver's table
        # increments ids per allocation), so the recorded id doubles as
        # the allocation index and maps 1:1 onto the replay's ids.
        id_map: dict[int, int] = {}
        order = 0
        for kind, value in self.requests:
            if kind == "alloc":
                obj = view.allocate(value)
                id_map[order] = obj.object_id
                order += 1
            else:
                target = id_map.get(value)
                if target is not None and view.is_live(target):
                    view.free(target)
                else:
                    self.skipped_frees += 1


def replay_against(
    params: BoundParams,
    trace: TraceLog,
    manager_name: str,
):
    """Convenience: replay a trace against a registry manager by name."""
    from ..mm.registry import create_manager
    from .driver import run_execution

    program = ReplayProgram(trace)
    manager = create_manager(manager_name, params)
    return run_execution(params, program, manager)
