"""Execution traces: a flat record of everything that happened.

Traces serve three purposes: debugging adversary logic, replaying an
interaction against a different manager implementation, and letting the
test suite assert temporal properties (budget monotonicity, potential
growth) without instrumenting the hot path.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterator

__all__ = ["TraceEvent", "TraceLog", "TRACE_SCHEMA_VERSION"]

#: Bump on any incompatible change to the trace line encoding.  The
#: version rides the first JSONL line as ``{"kind": "trace", "schema": N}``
#: so readers can refuse traces they would misparse.
TRACE_SCHEMA_VERSION = 1

#: The event vocabulary a trace line may carry.
_TRACE_KINDS = frozenset({"alloc", "free", "move", "mark"})


@dataclass(frozen=True)
class TraceEvent:
    """One interaction event.

    ``kind`` is one of ``"alloc"``, ``"free"``, ``"move"`` or ``"mark"``
    (marks are program-inserted annotations such as step boundaries).
    """

    seq: int
    kind: str
    object_id: int | None = None
    size: int | None = None
    address: int | None = None
    old_address: int | None = None
    label: str | None = None

    def describe(self) -> str:
        """A compact single-line rendering."""
        if self.kind == "alloc":
            return f"#{self.seq} alloc obj={self.object_id} size={self.size} @{self.address}"
        if self.kind == "free":
            return f"#{self.seq} free  obj={self.object_id} size={self.size} @{self.address}"
        if self.kind == "move":
            return (
                f"#{self.seq} move  obj={self.object_id} size={self.size} "
                f"@{self.old_address} -> @{self.address}"
            )
        return f"#{self.seq} mark  {self.label}"


class TraceLog:
    """An append-only event log with typed record helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    def record_alloc(self, seq: int, object_id: int, size: int, address: int) -> None:
        """Log an allocation."""
        self._events.append(TraceEvent(seq, "alloc", object_id, size, address))

    def record_free(self, seq: int, object_id: int, size: int, address: int) -> None:
        """Log a de-allocation."""
        self._events.append(TraceEvent(seq, "free", object_id, size, address))

    def record_move(
        self, seq: int, object_id: int, size: int,
        old_address: int, new_address: int,
    ) -> None:
        """Log a compaction move."""
        self._events.append(
            TraceEvent(seq, "move", object_id, size, new_address, old_address)
        )

    def record_mark(self, seq: int, label: str) -> None:
        """Log a program annotation (e.g. ``"stage2 step=5"``)."""
        self._events.append(TraceEvent(seq, "mark", label=label))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """Every event of one kind, in order."""
        return [event for event in self._events if event.kind == kind]

    # JSONL interop (same line discipline as repro.obs.export) -------------

    def to_jsonl(self) -> str:
        """One JSON object per event, one per line, ``None`` fields omitted.

        The first line is a schema header (``{"kind": "trace", "schema":
        N}``); the rest matches the observability layer's JSONL
        discipline (flat dicts, sorted keys), so trace files and
        ``events.jsonl`` exports can share tooling.
        """
        lines = [json.dumps(
            {"kind": "trace", "schema": TRACE_SCHEMA_VERSION}, sort_keys=True
        )]
        for event in self._events:
            record = {
                key: value
                for key, value in asdict(event).items()
                if value is not None
            }
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceLog":
        """Rebuild a log from :meth:`to_jsonl` output (round-trip exact).

        Raises ``ValueError`` on a schema-version mismatch, an unknown
        event kind, or a malformed record.  Headerless input (the pre-
        versioning encoding) is still accepted.
        """
        log = cls()
        first = True
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if first:
                first = False
                if isinstance(record, dict) and record.get("kind") == "trace":
                    schema = record.get("schema")
                    if schema != TRACE_SCHEMA_VERSION:
                        raise ValueError(
                            f"trace schema {schema!r} unsupported "
                            f"(expected {TRACE_SCHEMA_VERSION})"
                        )
                    continue
            kind = record.get("kind") if isinstance(record, dict) else None
            if kind not in _TRACE_KINDS:
                raise ValueError(f"unknown trace event kind {kind!r}")
            try:
                log._events.append(TraceEvent(**record))
            except TypeError as error:
                raise ValueError(f"malformed trace record {record!r}") from error
        return log

    def replay_requests(self) -> Iterator[tuple[str, int]]:
        """The program-visible request stream: ``("alloc", size)`` and
        ``("free", object_id)`` pairs, for replaying against another
        manager.  Moves are omitted — they are the manager's actions.
        """
        for event in self._events:
            if event.kind == "alloc":
                assert event.size is not None
                yield ("alloc", event.size)
            elif event.kind == "free":
                assert event.object_id is not None
                yield ("free", event.object_id)
