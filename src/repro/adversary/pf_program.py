"""The paper's bad program :math:`P_F` (Algorithm 1).

Two stages:

**Stage I** (steps ``0 .. ell``): Robson's program with ghost handling —
see :mod:`repro.adversary.robson_program`.  Steps ``ell+1 .. 2*ell - 1``
are *null steps* (nothing happens; they only let the chunk size outgrow
the largest Stage-I object by the density factor ``2^ell``).  At the end
of the stage (line 9) every surviving live object and ghost is
associated with the chunk of ``D(2*ell - 1)`` containing its
f_ell-occupying word.

**Stage II** (steps ``i = 2*ell .. log2(n) - 2``): at each step the
chunk partition coarsens (associations merge), then

* *density pass* (line 13): from every chunk, free as many live
  associated objects as possible while the chunk's associated weight
  stays at least ``2^(i - ell)`` — density ``2^-ell``, chosen so that
  evacuating a chunk costs the manager more budget than the allocation
  reusing it earns back.  Freeing the half of a border object
  re-associates it whole with the chunk holding its other half, which is
  then re-evaluated;
* *allocation pass* (line 14): allocate ``floor(x * M / 2^(i+2))``
  objects of ``2^(i+2)`` words (stopping at the live-space cap), where
  ``x = (1 - 2^-ell * h) / (ell + 1)`` is the paper's per-step
  allocation ration.  Each placed object fully covers at least three
  chunks; the first and third get the object's halves, the middle joins
  the set ``E``, and any previous (residue) associations on the three
  are cleared.

Whenever the manager moves an object, the program frees it immediately;
in Stage I it becomes a ghost, in Stage II its association is kept as a
residue (the chunk it occupied stays "used" forever, which is what the
potential function counts).
"""

from __future__ import annotations

from typing import Any

from ..core.params import BoundParams
from ..core.theorem1 import feasible_density_exponents, lower_bound, waste_factor_at
from ..heap.chunks import ChunkId, ChunkPartition
from ..heap.object_model import HeapObject
from ..obs.events import EventBus, StageTransition
from .association import WHOLE, AssociationMap
from .base import AdversaryProgram, ProgramView
from .ghosts import GhostRegistry
from .robson_program import RobsonEngine

__all__ = ["PFProgram"]


class PFProgram(AdversaryProgram):
    """Cohen & Petrank's two-stage adversary."""

    name = "cohen-petrank-PF"

    def __init__(
        self,
        params: BoundParams,
        *,
        density_exponent: int | None = None,
        observer: Any = None,
        bus: EventBus | None = None,
    ) -> None:
        """Build the adversary for one parameter point.

        ``density_exponent`` (the paper's ``ell``) defaults to the value
        maximizing the Theorem-1 bound.  ``observer`` may define any of
        the hook methods ``on_stage1_step(i, offset)``,
        ``on_association_initialized(program)``,
        ``on_stage2_step(i, program)``, ``after_density_pass(i, program)``,
        ``after_allocation(i, obj, program)`` and ``on_finish(program)``;
        the invariant-checking tests ride these hooks.  ``bus`` is the
        optional telemetry bus: every Stage I/II round boundary emits a
        :class:`~repro.obs.events.StageTransition` through it.
        """
        if params.compaction_divisor is None:
            raise ValueError(
                "P_F targets c-partial managers; give params a finite c "
                "(use RobsonProgram against non-moving managers)"
            )
        self.params = params
        feasible = feasible_density_exponents(params)
        if not feasible:
            raise ValueError(
                f"no feasible density exponent at {params.describe()}; "
                "n is too small relative to c for Stage II to run"
            )
        if density_exponent is None:
            best = lower_bound(params).density_exponent
            density_exponent = best if best is not None else feasible[-1]
        if density_exponent not in feasible:
            raise ValueError(
                f"density exponent {density_exponent} infeasible; choose "
                f"from {feasible}"
            )
        self.density_exponent = density_exponent
        #: The Theorem-1 waste factor at this ``ell`` (the paper's ``h``).
        self.waste_target = waste_factor_at(params, density_exponent)
        #: Algorithm 1's per-step allocation ration ``x``.
        self.x_fraction = max(
            0.0,
            (1.0 - 2.0**-density_exponent * self.waste_target)
            / (density_exponent + 1.0),
        )
        self.observer = observer
        self.bus = bus
        # Execution state (populated by run()).
        self.ghosts = GhostRegistry()
        self.association = AssociationMap()
        self.stage = 0
        self.current_exponent = 0
        self._view: ProgramView | None = None
        self._engine: RobsonEngine | None = None

    # Observer plumbing ------------------------------------------------------

    def _notify(self, hook: str, *args: Any) -> None:
        method = getattr(self.observer, hook, None)
        if method is not None:
            method(*args)

    def _emit_stage(self, stage: str, step: int, label: str = "") -> None:
        if self.bus is not None and self.bus.has_sinks:
            self.bus.emit(StageTransition(
                program=self.name, stage=stage, step=step, label=label,
            ))

    # Move handling (Definition 4.1 + Stage-II residue rule) -----------------

    def _on_move(self, obj: HeapObject, old: int, new: int) -> None:
        view = self._view
        assert view is not None
        view.free(obj.object_id)
        if self.stage == 1:
            assert self._engine is not None
            self._engine.notify_freed(obj.object_id)
            self.ghosts.record(obj)
        else:
            # Stage II: association persists as a residue.
            self.association.mark_residue(obj.object_id)

    # Stage I -------------------------------------------------------------------

    def _run_stage1(self, view: ProgramView) -> None:
        self.stage = 1
        engine = RobsonEngine(view, self.ghosts)
        self._engine = engine
        view.mark("PF stage1 step=0")
        self._emit_stage("I", 0, "stage I begin")
        engine.initial_step()
        for i in range(1, self.density_exponent + 1):
            view.mark(f"PF stage1 step={i}")
            self._emit_stage("I", i)
            engine.step(i)
            self._notify("on_stage1_step", i, engine.offset)
        # Null steps ell+1 .. 2*ell-1: nothing happens.
        self.current_exponent = 2 * self.density_exponent - 1

    def _initialize_association(self) -> None:
        """Algorithm 1, line 9: associate survivors with ``D(2*ell-1)``."""
        engine = self._engine
        assert engine is not None
        exponent = 2 * self.density_exponent - 1
        chunk_size = 1 << exponent
        for object_id, address, size in engine.live_items():
            word = engine.occupying_word(address, size)
            chunk = ChunkId(exponent, word // chunk_size)
            self.association.associate_whole(object_id, size, chunk)
        for ghost in self.ghosts:
            word = engine.occupying_word(ghost.address, ghost.size)
            chunk = ChunkId(exponent, word // chunk_size)
            self.association.associate_whole(ghost.object_id, ghost.size, chunk)
            self.association.mark_residue(ghost.object_id)
        self._notify("on_association_initialized", self)

    # Stage II ------------------------------------------------------------------

    def _live_weight_twice(self, chunk: ChunkId) -> int:
        """Doubled associated weight of *live* objects on ``chunk``.

        The density the program defends is live space: §3's argument is
        that reusing a chunk forces the manager to move the live words
        residing on it.  Residues (compacted-and-freed objects) still
        count toward the potential, but they are free space — counting
        them toward the keep-threshold would let the program over-free
        and hand the manager evacuated chunks for nothing.
        """
        total = 0
        for object_id, fraction in self.association.chunk_members(chunk).items():
            entry = self.association.entry(object_id)
            if entry is not None and entry.live:
                total += fraction * entry.size
        return total

    def _density_pass(self, i: int) -> None:
        """Algorithm 1, line 13."""
        view = self._view
        assert view is not None
        # Doubled threshold: keep live sum |o| >= 2^(i - ell).
        threshold2 = 1 << (i - self.density_exponent + 1)
        pending = list(self.association.chunks())
        queued = set(pending)
        while pending:
            chunk = pending.pop()
            queued.discard(chunk)
            live_weight2 = self._live_weight_twice(chunk)
            members = sorted(
                self.association.chunk_members(chunk).items(),
                key=lambda item: -self.association.entry(item[0]).size,  # type: ignore[union-attr]
            )
            for object_id, fraction in members:
                entry = self.association.entry(object_id)
                if entry is None or not entry.live:
                    continue  # residues cannot be freed
                if not view.is_live(object_id):
                    continue
                contribution = fraction * entry.size
                if live_weight2 - contribution < threshold2:
                    continue  # keeping the live-density floor
                if fraction == WHOLE:
                    view.free(object_id)
                    self.association.remove_object(object_id)
                else:
                    other = self.association.transfer_half(object_id, chunk)
                    if other not in queued:
                        pending.append(other)
                        queued.add(other)
                live_weight2 -= contribution

    def _allocation_pass(self, i: int) -> None:
        """Algorithm 1, line 14."""
        view = self._view
        assert view is not None
        object_size = 1 << (i + 2)
        count = int(self.x_fraction * self.params.live_space) // object_size
        partition = ChunkPartition(i)
        for _ in range(count):
            if view.live_words + object_size > self.params.live_space:
                break
            obj = view.allocate(object_size)
            if not view.is_live(obj.object_id):
                continue  # moved-and-freed during its own request
            covered = partition.fully_covered_by(obj.address, obj.end)
            assert len(covered) >= 3, (
                "a 4*2^i object must fully cover at least three 2^i chunks"
            )
            first, middle, third = covered[0], covered[1], covered[2]
            for chunk in (first, middle, third):
                self.association.clear_chunk(chunk)
            self.association.associate_halves(
                obj.object_id, object_size, first, third
            )
            self.association.mark_middle(middle)
            self._notify("after_allocation", i, obj, self)

    def _run_stage2(self, view: ProgramView) -> None:
        self.stage = 2
        first_step = 2 * self.density_exponent
        last_step = self.params.log_n - 2
        for i in range(first_step, last_step + 1):
            view.mark(f"PF stage2 step={i}")
            self._emit_stage(
                "II", i, "stage I -> stage II" if i == first_step else "",
            )
            self.current_exponent = i
            self.association.merge_step()
            self._notify("on_stage2_step", i, self)
            self._density_pass(i)
            self._notify("after_density_pass", i, self)
            self._allocation_pass(i)

    # Entry point -----------------------------------------------------------------

    def run(self, view: ProgramView) -> None:
        self._view = view
        view.set_move_listener(self._on_move)
        try:
            self._run_stage1(view)
            self._initialize_association()
            self._run_stage2(view)
        finally:
            view.set_move_listener(None)
            self._notify("on_finish", self)
