"""Program-side interface to an execution.

The paper's model (§2.1): the program issues de-allocations and
allocation requests, learns the address of every allocated object, and is
told (implicitly, by observing the allocator) when objects move.  Our
driver makes the move signal explicit — :class:`ProgramView` lets the
program register a move listener that fires *immediately* after each
compaction move, which is precisely the hook :math:`P_F` needs to free
moved objects on the spot.

A program is anything implementing :class:`AdversaryProgram`; the name is
historical — benign workloads (used to exercise the upper-bound
managers) implement the same interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from ..heap.object_model import HeapObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .driver import ExecutionDriver

__all__ = ["ProgramView", "AdversaryProgram", "ProgramMoveListener"]

#: (object, old_address, new_address) — fired right after each move.
ProgramMoveListener = Callable[[HeapObject, int, int], None]


class ProgramView:
    """The program's handle on the execution (capability-style)."""

    def __init__(self, driver: "ExecutionDriver") -> None:
        self._driver = driver

    # Requests -------------------------------------------------------------

    def allocate(self, size: int) -> HeapObject:
        """Request an object of ``size`` words; returns it (address visible).

        The driver may run the manager's compaction window first, so the
        move listener can fire from inside this call.
        """
        return self._driver.program_allocate(size)

    def free(self, object_id: int) -> None:
        """De-allocate one of the program's live objects."""
        self._driver.program_free(object_id)

    def mark(self, label: str) -> None:
        """Insert an annotation into the trace (no-op without a trace)."""
        self._driver.program_mark(label)

    # Observation -------------------------------------------------------------

    @property
    def live_words(self) -> int:
        """The program's current simultaneous live space."""
        return self._driver.heap.live_words

    @property
    def live_space_bound(self) -> int:
        """The contract bound ``M``."""
        return self._driver.params.live_space

    @property
    def max_object(self) -> int:
        """The contract bound ``n``."""
        return self._driver.params.max_object

    def is_live(self, object_id: int) -> bool:
        """Whether an object the program allocated is still live."""
        return self._driver.heap.objects.is_live(object_id)

    def address_of(self, object_id: int) -> int:
        """Current address of a live object (the model grants this)."""
        return self._driver.heap.objects.require_live(object_id).address

    def set_move_listener(self, listener: ProgramMoveListener | None) -> None:
        """Register the immediate move-notification callback."""
        self._driver.program_move_listener = listener


class AdversaryProgram(ABC):
    """A program in the paper's sense: a request sequence with strategy."""

    #: Human-readable program name.
    name = "abstract"

    @abstractmethod
    def run(self, view: ProgramView) -> None:
        """Drive the whole interaction through ``view``."""
