"""Robson's bad program :math:`P_R` (Algorithm 2), compaction-tolerant.

The program works in steps.  Step 0 fills the live budget with one-word
objects.  Step ``i`` picks an offset ``f_i`` in ``{f_{i-1},
f_{i-1} + 2^{i-1}}`` maximizing the wasted space
:math:`\\sum_{o\\ f_i\\text{-occupying}} (2^i - |o|)`, frees every
object that is *not* f_i-occupying, and allocates as many ``2^i``-word
objects as the live budget allows.  Kept objects pin one word at offset
``f_i`` of their chunk, so no two adjacent chunks can ever hold a later
(larger) object between them — the heap shatters.

Robson analysed the program against non-moving managers.  The paper
reuses it as Stage I of :math:`P_F` by adding *ghost* handling
(Definition 4.1): if the manager moves an object, the program frees it
at once but keeps a ghost at its birth address participating in all
offset/free/allocation decisions — the reduction of §4.2 shows this
preserves Robson's guarantees.  :class:`RobsonEngine` implements the
step machinery with ghosts; :class:`RobsonProgram` is the standalone
adversary (steps ``1 .. log2(n)``).
"""

from __future__ import annotations

from ..core.params import BoundParams
from ..heap.object_model import HeapObject
from ..obs.events import EventBus, StageTransition
from .base import AdversaryProgram, ProgramView
from .ghosts import GhostRegistry

__all__ = ["RobsonEngine", "RobsonProgram"]


class RobsonEngine:
    """The reusable step machinery (used standalone and by Stage I of P_F)."""

    def __init__(self, view: ProgramView, ghosts: GhostRegistry) -> None:
        self.view = view
        self.ghosts = ghosts
        self.offset = 0  # the current f_i
        self.step_index = 0
        # live engine objects: id -> (birth address, size).  Addresses
        # never change while live (a moved object is freed immediately).
        self._live: dict[int, tuple[int, int]] = {}
        self._live_words = 0

    # Bookkeeping fed by the program's move/free plumbing -------------------

    def notify_freed(self, object_id: int) -> None:
        """An engine object died (program free or move-then-free)."""
        record = self._live.pop(object_id, None)
        if record is not None:
            self._live_words -= record[1]

    def adopt(self, obj: HeapObject) -> None:
        """Track a freshly allocated live object."""
        self._live[obj.object_id] = (obj.birth_address, obj.size)
        self._live_words += obj.size

    @property
    def live_words(self) -> int:
        """Words in live engine objects."""
        return self._live_words

    @property
    def considered_words(self) -> int:
        """Live + ghost words — the Algorithm-1-line-7 allocation cap."""
        return self._live_words + self.ghosts.words

    def live_items(self) -> list[tuple[int, int, int]]:
        """``(object_id, address, size)`` for live engine objects."""
        return [(oid, addr, size) for oid, (addr, size) in self._live.items()]

    # Steps ----------------------------------------------------------------

    def initial_step(self) -> None:
        """Step 0: fill the live budget with one-word objects."""
        self.offset = 0
        self.step_index = 0
        budget = self.view.live_space_bound - self.considered_words
        for _ in range(budget):
            obj = self.view.allocate(1)
            if self.view.is_live(obj.object_id):
                self.adopt(obj)

    @staticmethod
    def _occupies(address: int, size: int, offset: int, period: int) -> bool:
        first = address + ((offset - address) % period)
        return first < address + size

    def _wasted_space(self, offset: int, period: int) -> int:
        """:math:`\\sum (2^i - |o|)` over f-occupying live + ghost items."""
        total = 0
        for _, address, size in self.live_items():
            if self._occupies(address, size, offset, period):
                total += period - size
        for ghost in self.ghosts:
            if ghost.occupies_offset(offset, period):
                total += period - ghost.size
        return total

    def choose_offset(self, i: int) -> int:
        """Pick ``f_i`` from the two candidates (ties keep ``f_{i-1}``)."""
        period = 1 << i
        keep = self.offset
        shift = self.offset + (1 << (i - 1))
        if self._wasted_space(shift, period) > self._wasted_space(keep, period):
            return shift
        return keep

    def step(self, i: int) -> None:
        """One full Robson step: pick offset, free, refill."""
        if i < 1:
            raise ValueError("steps are numbered from 1")
        period = 1 << i
        self.offset = self.choose_offset(i)
        self.step_index = i
        # Free every live object that is not f_i-occupying.
        for object_id, address, size in self.live_items():
            if not self._occupies(address, size, self.offset, period):
                self.view.free(object_id)
                self.notify_freed(object_id)
        # Ghosts leave the story the same way (no physical free needed).
        self.ghosts.drop_non_occupying(self.offset, period)
        # Refill the live budget with 2^i-word objects.
        count = (self.view.live_space_bound - self.considered_words) // period
        for _ in range(count):
            obj = self.view.allocate(period)
            if self.view.is_live(obj.object_id):
                self.adopt(obj)

    def occupying_word(self, address: int, size: int) -> int:
        """The item's (unique, since ``size <= 2^i``) f-occupying word."""
        period = 1 << self.step_index
        first = address + ((self.offset - address) % period)
        if first >= address + size:
            raise ValueError("item is not f-occupying at the current offset")
        return first


class RobsonProgram(AdversaryProgram):
    """Standalone :math:`P_R`: steps ``1 .. log2(n)`` after the fill."""

    name = "robson-PR"

    def __init__(
        self,
        params: BoundParams,
        *,
        max_step: int | None = None,
        bus: EventBus | None = None,
    ) -> None:
        self.params = params
        self.max_step = params.log_n if max_step is None else max_step
        if not 0 <= self.max_step <= params.log_n:
            raise ValueError(
                f"max_step must lie in [0, log2(n)] = [0, {params.log_n}]"
            )
        self.ghosts = GhostRegistry()
        self.engine: RobsonEngine | None = None
        #: Optional telemetry bus: each round boundary emits a
        #: :class:`~repro.obs.events.StageTransition`.
        self.bus = bus

    def _emit_stage(self, step: int, label: str = "") -> None:
        if self.bus is not None and self.bus.has_sinks:
            self.bus.emit(StageTransition(
                program=self.name, stage="robson", step=step, label=label,
            ))

    def run(self, view: ProgramView) -> None:
        engine = RobsonEngine(view, self.ghosts)
        self.engine = engine

        def on_move(obj: HeapObject, old: int, new: int) -> None:
            # Definition 4.1: free immediately, haunt the birth address.
            view.free(obj.object_id)
            engine.notify_freed(obj.object_id)
            self.ghosts.record(obj)

        view.set_move_listener(on_move)
        view.mark("robson step=0")
        self._emit_stage(0, "initial fill")
        engine.initial_step()
        for i in range(1, self.max_step + 1):
            view.mark(f"robson step={i}")
            self._emit_stage(i)
            engine.step(i)
        view.set_move_listener(None)
