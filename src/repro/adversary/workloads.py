"""Benign (non-adversarial) workloads.

The upper-bound constructions promise a heap bound against *every*
program, so the experiment suite also drives managers with ordinary
allocation patterns: random churn, a sawtooth ramp, and a size-phase
workload modelled on the paper's motivating scenario (long-lived small
objects interleaved with short-lived large ones).  All randomness is
seeded, so runs are reproducible.
"""

from __future__ import annotations

import random

from ..core.params import BoundParams
from .base import AdversaryProgram, ProgramView

__all__ = [
    "RandomChurnWorkload",
    "SawtoothWorkload",
    "PhasedWorkload",
    "ExponentialChurnWorkload",
    "BurstyWorkload",
]


class RandomChurnWorkload(AdversaryProgram):
    """Steady-state churn: random allocs and frees around a target load.

    Parameters
    ----------
    params:
        The ``(M, n, c)`` contract the workload honours.
    operations:
        Total number of requests to issue.
    target_load:
        Fraction of ``M`` the workload tries to keep live.
    powers_of_two:
        Restrict sizes to powers of two (the ``P2`` family) when True.
    seed:
        RNG seed.
    """

    name = "random-churn"

    def __init__(
        self,
        params: BoundParams,
        *,
        operations: int = 2000,
        target_load: float = 0.8,
        powers_of_two: bool = False,
        seed: int = 0x5EED,
    ) -> None:
        if not 0.0 < target_load <= 1.0:
            raise ValueError("target_load must be in (0, 1]")
        if operations < 0:
            raise ValueError("operations must be non-negative")
        self.params = params
        self.operations = operations
        self.target_load = target_load
        self.powers_of_two = powers_of_two
        self.seed = seed

    def _random_size(self, rng: random.Random) -> int:
        raw = rng.randint(1, self.params.max_object)
        if self.powers_of_two:
            # Round *down* so the size never exceeds n.
            return 1 << (raw.bit_length() - 1)
        return raw

    def run(self, view: ProgramView) -> None:
        rng = random.Random(self.seed)
        live: list[int] = []
        target = int(self.target_load * view.live_space_bound)
        for _ in range(self.operations):
            size = self._random_size(rng)
            fits = view.live_words + size <= view.live_space_bound
            if (view.live_words < target or not live) and fits:
                obj = view.allocate(size)
                if view.is_live(obj.object_id):
                    live.append(obj.object_id)
            elif live:
                index = rng.randrange(len(live))
                live[index], live[-1] = live[-1], live[index]
                victim = live.pop()
                if view.is_live(victim):
                    view.free(victim)


class SawtoothWorkload(AdversaryProgram):
    """Repeated fill-to-M / free-most cycles (GC-pressure sawtooth)."""

    name = "sawtooth"

    def __init__(
        self,
        params: BoundParams,
        *,
        cycles: int = 8,
        survivor_fraction: float = 0.2,
        object_size: int | None = None,
        seed: int = 7,
    ) -> None:
        if not 0.0 <= survivor_fraction < 1.0:
            raise ValueError("survivor_fraction must be in [0, 1)")
        self.params = params
        self.cycles = cycles
        self.survivor_fraction = survivor_fraction
        self.object_size = object_size or max(1, params.max_object // 16)
        if self.object_size > params.max_object:
            raise ValueError("object_size exceeds the n contract")
        self.seed = seed

    def run(self, view: ProgramView) -> None:
        rng = random.Random(self.seed)
        live: list[int] = []
        for _ in range(self.cycles):
            while view.live_words + self.object_size <= view.live_space_bound:
                obj = view.allocate(self.object_size)
                if view.is_live(obj.object_id):
                    live.append(obj.object_id)
            rng.shuffle(live)
            keep = int(len(live) * self.survivor_fraction)
            doomed, live = live[keep:], live[:keep]
            for object_id in doomed:
                if view.is_live(object_id):
                    view.free(object_id)


class PhasedWorkload(AdversaryProgram):
    """Long-lived small objects pinned under short-lived large phases.

    Phase A allocates small long-lived objects across the heap; phase B
    repeatedly allocates and frees large objects, which must thread
    around the survivors — the textbook fragmentation scenario the
    paper's introduction motivates partial compaction with.
    """

    name = "phased"

    def __init__(
        self,
        params: BoundParams,
        *,
        pinned_fraction: float = 0.25,
        phases: int = 6,
        seed: int = 23,
    ) -> None:
        if not 0.0 < pinned_fraction < 1.0:
            raise ValueError("pinned_fraction must be in (0, 1)")
        self.params = params
        self.pinned_fraction = pinned_fraction
        self.phases = phases
        self.seed = seed

    def run(self, view: ProgramView) -> None:
        rng = random.Random(self.seed)
        small = max(1, self.params.max_object // 64)
        large = self.params.max_object
        spacer = max(small, large // 2)
        # Phase A: lay down alternating pin/spacer pairs while *keeping
        # the spacers live* (so later pairs cannot slide into earlier
        # holes), then free every spacer at once.  The surviving pins
        # shatter the low heap into half-object holes phase B cannot use.
        fill_budget = int(self.pinned_fraction * view.live_space_bound)
        batch: list[int] = []
        spacers: list[int] = []
        while view.live_words + small + spacer <= fill_budget:
            pin = view.allocate(small)
            pad = view.allocate(spacer)
            if view.is_live(pin.object_id):
                batch.append(pin.object_id)
            if view.is_live(pad.object_id):
                spacers.append(pad.object_id)
        for object_id in spacers:
            if view.is_live(object_id):
                view.free(object_id)
        # Phase B: churn large objects in the remaining budget.
        for _ in range(self.phases):
            transient: list[int] = []
            while view.live_words + large <= view.live_space_bound:
                obj = view.allocate(large)
                if view.is_live(obj.object_id):
                    transient.append(obj.object_id)
            rng.shuffle(transient)
            for object_id in transient:
                if view.is_live(object_id):
                    view.free(object_id)


class ExponentialChurnWorkload(AdversaryProgram):
    """Churn with an exponential size distribution.

    Real allocation traces are dominated by small objects with a long
    tail; sampling sizes as ``min(n, 1 + round(Exp(scale)))`` gives the
    classic shape.  Lifetimes are size-correlated (big objects die
    young), stressing policies differently from uniform churn.
    """

    name = "exponential-churn"

    def __init__(
        self,
        params: BoundParams,
        *,
        operations: int = 2000,
        mean_size: float = 8.0,
        seed: int = 0xE49,
    ) -> None:
        if mean_size <= 0:
            raise ValueError("mean_size must be positive")
        if operations < 0:
            raise ValueError("operations must be non-negative")
        self.params = params
        self.operations = operations
        self.mean_size = mean_size
        self.seed = seed

    def run(self, view: ProgramView) -> None:
        rng = random.Random(self.seed)
        live: list[tuple[int, int]] = []  # (object id, size)
        for _ in range(self.operations):
            size = min(
                self.params.max_object,
                1 + int(rng.expovariate(1.0 / self.mean_size)),
            )
            if view.live_words + size <= view.live_space_bound and (
                not live or rng.random() < 0.6
            ):
                obj = view.allocate(size)
                if view.is_live(obj.object_id):
                    live.append((obj.object_id, size))
            elif live:
                # Prefer freeing larger objects (they die young).
                live.sort(key=lambda pair: -pair[1])
                cut = max(1, len(live) // 4)
                index = rng.randrange(cut)
                object_id, _ = live.pop(index)
                if view.is_live(object_id):
                    view.free(object_id)


class BurstyWorkload(AdversaryProgram):
    """Arena-style bursts: allocate a batch, free it all, repeat.

    Each burst picks one size and fills a fraction of the live budget
    with it, then releases the whole burst — the pattern of
    request-scoped arenas.  Between bursts a small survivor set persists
    (the session state), which is what keeps the heap from resetting.
    """

    name = "bursty"

    def __init__(
        self,
        params: BoundParams,
        *,
        bursts: int = 12,
        survivor_every: int = 16,
        seed: int = 0xB0B,
    ) -> None:
        if bursts < 0:
            raise ValueError("bursts must be non-negative")
        if survivor_every < 1:
            raise ValueError("survivor_every must be at least 1")
        self.params = params
        self.bursts = bursts
        self.survivor_every = survivor_every
        self.seed = seed

    def run(self, view: ProgramView) -> None:
        rng = random.Random(self.seed)
        log_n = self.params.max_object.bit_length() - 1
        for burst_index in range(self.bursts):
            size = 1 << rng.randint(0, log_n)
            batch: list[int] = []
            budget = int(view.live_space_bound * 0.7)
            while view.live_words + size <= budget:
                obj = view.allocate(size)
                if view.is_live(obj.object_id):
                    batch.append(obj.object_id)
            for index, object_id in enumerate(batch):
                keep = index % self.survivor_every == burst_index % self.survivor_every
                if not keep and view.is_live(object_id):
                    view.free(object_id)
