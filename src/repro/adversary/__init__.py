"""Adversarial programs and the execution framework.

This package makes the paper's lower-bound constructions *runnable*:

* :class:`~repro.adversary.robson_program.RobsonProgram` — Robson's bad
  program :math:`P_R` (Algorithm 2), extended with ghost handling so it
  tolerates compacting managers;
* :class:`~repro.adversary.pf_program.PFProgram` — the paper's two-stage
  adversary :math:`P_F` (Algorithm 1) with ghosts, object↔chunk
  association and density maintenance;
* :class:`~repro.adversary.driver.ExecutionDriver` — the §2.1
  interaction loop, enforcing the ``M`` and ``c``-partial contracts and
  measuring ``HS``;
* :mod:`~repro.adversary.potential` — the potential function ``u(t)``
  with an observer asserting Claim 4.16 on live executions;
* :mod:`~repro.adversary.workloads` — benign programs for exercising the
  upper-bound managers.
"""

from .association import HALF, WHOLE, AssociationMap
from .base import AdversaryProgram, ProgramView
from .checkerboard import CheckerboardProgram
from .driver import ExecutionDriver, ExecutionResult, run_execution
from .ghosts import Ghost, GhostRegistry
from .pf_program import PFProgram
from .potential import PotentialObserver, potential, potential_twice
from .replay import ReplayProgram, replay_against
from .robson_program import RobsonEngine, RobsonProgram
from .stats import LemmaLedger, LemmaReport
from .trace import TraceEvent, TraceLog
from .workloads import (
    BurstyWorkload,
    ExponentialChurnWorkload,
    PhasedWorkload,
    RandomChurnWorkload,
    SawtoothWorkload,
)

__all__ = [
    "AdversaryProgram",
    "AssociationMap",
    "BurstyWorkload",
    "CheckerboardProgram",
    "ExponentialChurnWorkload",
    "ExecutionDriver",
    "ExecutionResult",
    "Ghost",
    "GhostRegistry",
    "HALF",
    "LemmaLedger",
    "LemmaReport",
    "PFProgram",
    "PhasedWorkload",
    "PotentialObserver",
    "ProgramView",
    "RandomChurnWorkload",
    "ReplayProgram",
    "RobsonEngine",
    "RobsonProgram",
    "SawtoothWorkload",
    "TraceEvent",
    "TraceLog",
    "WHOLE",
    "potential",
    "potential_twice",
    "replay_against",
    "run_execution",
]
