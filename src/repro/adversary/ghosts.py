"""Ghost objects — Definition 4.1.

When the memory manager compacts an object, the program :math:`P_F`
immediately de-allocates it, but keeps considering it *as if it still
resided at the address where it was allocated*.  Such a record is a
ghost: it has no physical presence (the manager may allocate over its
words), but it participates in the program's de-allocation decisions —
specifically the f-occupying sums of Robson's offset selection — until
the de-allocation procedure would have freed it, at which point it
vanishes for good.

Ghosts live at the object's *birth* address: an object is freed at its
first move, so it is never moved twice and the birth address is the only
address a ghost can haunt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..heap.object_model import HeapObject

__all__ = ["Ghost", "GhostRegistry"]


@dataclass(frozen=True)
class Ghost:
    """A compacted-then-freed object, pinned at its birth address."""

    object_id: int
    address: int
    size: int

    @property
    def end(self) -> int:
        """One past the ghost's last haunted word."""
        return self.address + self.size

    def occupies_offset(self, offset: int, period: int) -> bool:
        """The f-occupying test (Definition 4.2) at the ghost's address."""
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= offset < period:
            raise ValueError("offset must satisfy 0 <= offset < period")
        first = self.address + ((offset - self.address) % period)
        return first < self.end


class GhostRegistry:
    """The set of ghosts the program currently still considers."""

    def __init__(self) -> None:
        self._ghosts: dict[int, Ghost] = {}
        self._words = 0
        self._total_created = 0

    def __len__(self) -> int:
        return len(self._ghosts)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._ghosts

    def __iter__(self) -> Iterator[Ghost]:
        return iter(list(self._ghosts.values()))

    @property
    def words(self) -> int:
        """Total haunted words (counted by :math:`P_F`'s allocation caps)."""
        return self._words

    @property
    def total_created(self) -> int:
        """How many ghosts ever existed (diagnostics)."""
        return self._total_created

    def record(self, obj: HeapObject) -> Ghost:
        """Register a just-compacted object as a ghost at its birth address."""
        if obj.object_id in self._ghosts:
            raise ValueError(f"object {obj.object_id} is already a ghost")
        ghost = Ghost(obj.object_id, obj.birth_address, obj.size)
        self._ghosts[ghost.object_id] = ghost
        self._words += ghost.size
        self._total_created += 1
        return ghost

    def drop(self, object_id: int) -> Ghost:
        """Remove a ghost (the de-allocation procedure released it)."""
        ghost = self._ghosts.pop(object_id, None)
        if ghost is None:
            raise KeyError(f"no ghost for object {object_id}")
        self._words -= ghost.size
        return ghost

    def drop_non_occupying(self, offset: int, period: int) -> list[Ghost]:
        """Release every ghost that is not f-occupying; returns them."""
        released = [
            ghost for ghost in self._ghosts.values()
            if not ghost.occupies_offset(offset, period)
        ]
        for ghost in released:
            self.drop(ghost.object_id)
        return released
