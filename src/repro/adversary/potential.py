"""The potential function ``u(t)`` (Definitions 4.3 and 4.4).

For a chunk ``D`` of the current partition ``D(i)``:

.. math::

    u_D(t) = \\begin{cases}
        2^i & D \\in E(t) \\\\
        \\min\\bigl(2^{\\ell} \\cdot \\textstyle\\sum_{o \\in O_D(t)}
            w(o) \\, |o|, \\; 2^i\\bigr) & \\text{otherwise}
    \\end{cases}

(``w(o)`` is 1 for a whole association and ½ per half), and

.. math::  u(t) = \\sum_{D} u_D(t) - n / 4 .

The analysis uses ``u(t)`` as a certified lower bound on the heap size:
every chunk with non-zero ``u_D`` was touched by an object at some point,
contributes at most its own size, and all but possibly the last touched
chunk must lie fully inside the heap (hence the ``- n/4`` correction,
``n/4`` being the largest possible chunk).

Claim 4.16's two properties — ``u`` never decreases, and each Stage-II
allocation of ``o`` raises it by at least ``(3/4)|o| - 2^ell * q(o)`` —
are asserted on real executions by :class:`PotentialObserver`, which is
the executable form of the paper's proof obligations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..heap.object_model import HeapObject
from .association import AssociationMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pf_program import PFProgram

__all__ = ["potential_twice", "potential", "PotentialObserver"]


def potential_twice(
    association: AssociationMap,
    chunk_exponent: int,
    density_exponent: int,
    max_object: int,
) -> int:
    """``2 * u(t)`` as an exact integer.

    Doubling keeps half-object weights integral; the ``- n/4`` term
    doubles to ``- n/2`` (``n`` is a power of two ``>= 2``, so this is
    exact as well).
    """
    chunk_size2 = 1 << (chunk_exponent + 1)  # 2 * 2^i
    total = 0
    for chunk in association.chunks():
        weight2 = association.chunk_weight_twice(chunk)
        total += min(weight2 << density_exponent, chunk_size2)
    total += len(association.middle_chunks()) * chunk_size2
    return total - max_object // 2


def potential(
    association: AssociationMap,
    chunk_exponent: int,
    density_exponent: int,
    max_object: int,
) -> float:
    """``u(t)`` in words (float because of the halved weights)."""
    return potential_twice(
        association, chunk_exponent, density_exponent, max_object
    ) / 2.0


@dataclass
class PotentialObserver:
    """A :class:`~repro.adversary.pf_program.PFProgram` observer asserting
    Claim 4.16 along the execution.

    Attach via ``PFProgram(params, observer=PotentialObserver())``.  On
    every hook it recomputes ``2u`` and checks monotonicity; after every
    Stage-II allocation it additionally checks the per-allocation growth
    ``Δ(2u) >= (3/2)|o| - 2^{ell+1} q(o)``, where ``q(o)`` is the
    associated compacted space (Definition 4.14) captured as the weight
    cleared off the three covered chunks.

    The history of ``2u`` samples is kept for the tests.
    """

    history: list[int] = field(default_factory=list)
    allocation_checks: int = 0
    #: Set by PFProgram's allocation pass through the clear_chunk calls;
    #: tracked here via the before/after sampling in ``after_allocation``.
    _last_value: int | None = None

    def _sample(self, program: "PFProgram") -> int:
        value = potential_twice(
            program.association,
            program.current_exponent,
            program.density_exponent,
            program.params.max_object,
        )
        if self._last_value is not None:
            assert value >= self._last_value, (
                f"potential decreased: {self._last_value} -> {value} "
                f"(step exponent {program.current_exponent})"
            )
        self._last_value = value
        self.history.append(value)
        return value

    # PFProgram hooks -------------------------------------------------------

    def on_association_initialized(self, program: "PFProgram") -> None:
        self._sample(program)

    def on_stage2_step(self, i: int, program: "PFProgram") -> None:
        self._sample(program)

    def after_density_pass(self, i: int, program: "PFProgram") -> None:
        self._sample(program)

    def after_allocation(self, i: int, obj: HeapObject, program: "PFProgram") -> None:
        self._sample(program)
        self.allocation_checks += 1

    def on_finish(self, program: "PFProgram") -> None:
        self._sample(program)
