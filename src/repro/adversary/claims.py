"""Per-step claim checkers for Robson's program (Claim 4.9).

Robson's inequality 1 — the paper's Claim 4.9 — asserts that after step
``i`` of :math:`P_R` at least :math:`M (i+2) / 2^{i+1}` objects are
f_i-occupying.  Against a *non-moving* manager this must hold verbatim;
against a compacting one the ghost extension makes the live+ghost count
satisfy it (that is exactly what the §4.2 reduction buys).

:class:`Claim49Checker` recomputes the count after every step of a
:class:`~repro.adversary.robson_program.RobsonProgram` (or Stage I of
:math:`P_F` — it consumes the same engine) and records the margin; the
tests assert positivity across the manager family.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ghosts import GhostRegistry
from .robson_program import RobsonEngine

__all__ = ["StepCount", "Claim49Checker", "count_occupying"]


@dataclass(frozen=True)
class StepCount:
    """One step's occupying-object census."""

    step: int
    offset: int
    live_occupying: int
    ghost_occupying: int
    required: float

    @property
    def total(self) -> int:
        """Live + ghost occupying objects (the reduction's census)."""
        return self.live_occupying + self.ghost_occupying

    @property
    def margin(self) -> float:
        """``total - required`` — Claim 4.9 demands this be >= 0."""
        return self.total - self.required


def count_occupying(
    engine: RobsonEngine, ghosts: GhostRegistry, offset: int, period: int
) -> tuple[int, int]:
    """(live, ghost) objects occupying ``offset`` mod ``period``."""
    live = sum(
        1
        for _, address, size in engine.live_items()
        if RobsonEngine._occupies(address, size, offset, period)
    )
    ghost = sum(
        1 for g in ghosts if g.occupies_offset(offset, period)
    )
    return live, ghost


@dataclass
class Claim49Checker:
    """Collects :class:`StepCount` records from a Robson-style run.

    Wire it up by calling :meth:`after_step` after each engine step
    (``RobsonProgram`` does not expose per-step hooks, so the tests use
    the engine directly; ``PFProgram``'s ``on_stage1_step`` observer hook
    can drive it too via :meth:`as_pf_observer`).
    """

    live_bound: int
    records: list[StepCount] = field(default_factory=list)

    def after_step(
        self, engine: RobsonEngine, ghosts: GhostRegistry, step: int
    ) -> StepCount:
        """Census after step ``step`` (engine offset must be current)."""
        period = 1 << step
        live, ghost = count_occupying(engine, ghosts, engine.offset, period)
        record = StepCount(
            step=step,
            offset=engine.offset,
            live_occupying=live,
            ghost_occupying=ghost,
            required=self.live_bound * (step + 2) / (2 ** (step + 1)),
        )
        self.records.append(record)
        return record

    def all_hold(self) -> bool:
        """Whether every recorded step met Claim 4.9's count."""
        return all(record.margin >= 0 for record in self.records)

    def as_pf_observer(self, program) -> object:  # noqa: ANN001
        """An observer object wiring :meth:`after_step` into PFProgram's
        ``on_stage1_step`` hook."""
        checker = self

        class _Observer:
            def on_stage1_step(self, i: int, offset: int) -> None:
                engine = program._engine
                assert engine is not None
                checker.after_step(engine, program.ghosts, i)

        return _Observer()
