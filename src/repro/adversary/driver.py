"""The execution driver: program × manager → measured heap size.

The driver owns the heap, the budget ledger and the interaction order,
and enforces every contract of the paper's model:

* the program never exceeds ``M`` simultaneous live words and never
  allocates an object larger than ``n`` (``LiveSpaceExceeded`` /
  ``ValueError`` otherwise — a buggy adversary, not a buggy manager);
* the manager's moves all pass through the budget
  (:class:`~repro.mm.budget.CompactionBudget` raises on overdraft);
* the manager's placement must be into free words
  (:class:`~repro.heap.errors.OverlapError` otherwise);
* move notifications reach the program immediately.

The figure of merit is ``ExecutionResult.waste_factor`` —
``HS / M``, the quantity all the paper's bounds speak about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.params import BoundParams
from ..heap.errors import LiveSpaceExceeded
from ..heap.heap import SimHeap
from ..heap.kernel import make_kernel, resolve_kernel
from ..heap.metrics import HeapMetrics, snapshot
from ..heap.object_model import HeapObject
from ..mm.base import ManagerContext, MemoryManager
from ..mm.budget import BudgetSnapshot, CompactionBudget
from ..obs.events import Alloc, CompactionWindow, EventBus, Free, Move
from ..obs.trace import StageSpanSink, Tracer, active_tracer
from .base import AdversaryProgram, ProgramMoveListener, ProgramView
from .trace import TraceLog

__all__ = ["ExecutionDriver", "ExecutionResult", "run_execution"]


@dataclass(frozen=True)
class ExecutionResult:
    """Everything measured from one complete execution."""

    params: BoundParams
    program_name: str
    manager_name: str
    heap_size: int
    live_peak: int
    total_allocated: int
    total_freed: int
    total_moved: int
    allocation_count: int
    free_count: int
    move_count: int
    budget: BudgetSnapshot
    metrics: HeapMetrics
    trace: TraceLog | None = None
    #: Wall-clock duration of :meth:`ExecutionDriver.run`, in seconds.
    wall_seconds: float = 0.0

    @property
    def waste_factor(self) -> float:
        """``HS / M`` — the paper's figure of merit."""
        return self.heap_size / self.params.live_space

    @property
    def event_count(self) -> int:
        """Total heap events (allocations + frees + moves)."""
        return self.allocation_count + self.free_count + self.move_count

    @property
    def events_per_second(self) -> float:
        """Heap-event throughput over the measured wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.event_count / self.wall_seconds

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.program_name} vs {self.manager_name} @ "
            f"{self.params.describe()}: HS={self.heap_size} words "
            f"({self.waste_factor:.3f} x M), moved={self.total_moved}"
        )


class ExecutionDriver:
    """Mediates one (program, manager) interaction."""

    def __init__(
        self,
        params: BoundParams,
        manager: MemoryManager,
        *,
        record_trace: bool = False,
        paranoid: bool = False,
        budget: CompactionBudget | None = None,
        observer: EventBus | None = None,
        tracer: Tracer | None = None,
        kernel: str | None = None,
    ) -> None:
        self.params = params
        self.manager = manager
        #: The occupancy backend actually in use ("reference" or
        #: "bitmap") — explicit argument wins, then ``REPRO_KERNEL``,
        #: then the reference path.  Recorded in run manifests.
        self.kernel_name = resolve_kernel(kernel)
        self.heap = SimHeap(kernel=make_kernel(self.kernel_name))
        #: The telemetry bus, or None (the null-sink fast path: every
        #: emission site below guards on this, so uninstrumented runs
        #: pay one comparison per operation and build no event objects).
        self.observer = observer
        #: The span tracer, hoisted through active_tracer so a disabled
        #: tracer costs exactly what no tracer costs (one comparison);
        #: _fine_tracer is non-None only when per-operation spans are on.
        self.tracer = active_tracer(tracer)
        self._fine_tracer = (self.tracer
                             if self.tracer is not None and self.tracer.fine
                             else None)
        #: The budget ledger; pass an :class:`~repro.mm.budget.AbsoluteBudget`
        #: to run the B-bounded model variant instead of the c-partial one.
        self.budget = budget if budget is not None else CompactionBudget(
            params.compaction_divisor, observer=observer
        )
        if budget is not None and observer is not None \
                and getattr(budget, "observer", None) is None:
            budget.observer = observer
        self.trace: TraceLog | None = TraceLog() if record_trace else None
        #: Re-check full heap invariants after every event (slow; tests).
        self.paranoid = paranoid
        self.program_move_listener: ProgramMoveListener | None = None
        self._live_peak = 0
        self._allocs = 0
        self._frees = 0
        self._moves = 0
        if self._fine_tracer is not None:
            # The budget ledger's enforcement spans ride the same tracer
            # (the attribute is None on uninstrumented ledgers).
            self.budget.tracer = self._fine_tracer
        self._ctx = ManagerContext(
            self.heap, self.budget, move_listener=self._on_manager_move,
            observer=observer, tracer=self._fine_tracer,
        )
        manager.attach(self._ctx, observer=observer)

    # Program-facing operations (called via ProgramView) -------------------

    def program_allocate(self, size: int) -> HeapObject:
        """Serve one allocation request through the manager."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if size > self.params.max_object:
            raise ValueError(
                f"object of {size} words exceeds the n={self.params.max_object} "
                "contract"
            )
        if self.heap.live_words + size > self.params.live_space:
            raise LiveSpaceExceeded(
                f"allocating {size} would put live space at "
                f"{self.heap.live_words + size} > M={self.params.live_space}"
            )
        observer = self.observer
        # One has_sinks check per request: a subscriber-less bus takes
        # the same zero-allocation fast path as no bus at all.
        emitting = observer is not None and observer.has_sinks
        start_ns = time.perf_counter_ns() if emitting else 0
        tracer = self._fine_tracer
        if tracer is not None:
            alloc_span = tracer.begin_unchecked("alloc", {"size": size})
            search_stats = self.heap.occupied.search_stats
            searches_before = search_stats.searches
            gaps_before = search_stats.gaps_examined
        self._ctx.reset_request_counters()
        self.manager.prepare(size)
        # The compaction window may have triggered program frees; the
        # live-space check above still holds (frees only reduce it).
        address = self.manager.place(size)
        # The window closes only now: some managers compact lazily inside
        # place() (e.g. the Theorem-2 evacuator), and those moves belong
        # to this request's window just the same.
        if emitting and self._ctx.moves_this_request:
            observer.emit(CompactionWindow(
                request_size=size,
                moves=self._ctx.moves_this_request,
                moved_words=self._ctx.moved_words_this_request,
            ))
        obj = self.heap.place(address, size)  # raises OverlapError if bad
        self.budget.charge_allocation(size)
        self.manager.on_place(obj)
        self._allocs += 1
        self._live_peak = max(self._live_peak, self.heap.live_words)
        if emitting:
            observer.emit(Alloc(
                object_id=obj.object_id, size=size, address=address,
                latency_ns=time.perf_counter_ns() - start_ns,
            ))
        if tracer is not None:
            alloc_span.set(
                address=address,
                moves=self._ctx.moves_this_request,
                moved_words=self._ctx.moved_words_this_request,
                searches=search_stats.searches - searches_before,
                gaps_examined=search_stats.gaps_examined - gaps_before,
            )
            tracer.end(alloc_span)
        if self.trace is not None:
            self.trace.record_alloc(self.heap.clock, obj.object_id, size, address)
        if self.paranoid:
            self.heap.check_invariants()
            self.budget.check_invariant()
        return obj

    def program_free(self, object_id: int) -> None:
        """Serve one de-allocation."""
        tracer = self._fine_tracer
        if tracer is not None:
            free_span = tracer.begin_unchecked("free")
        obj = self.heap.free(object_id)
        self.manager.on_free(obj)
        self._frees += 1
        if tracer is not None:
            free_span.set(size=obj.size, address=obj.address)
            tracer.end(free_span)
        if self.observer is not None and self.observer.has_sinks:
            self.observer.emit(Free(
                object_id=object_id, size=obj.size, address=obj.address,
            ))
        if self.trace is not None:
            self.trace.record_free(self.heap.clock, object_id, obj.size, obj.address)
        if self.paranoid:
            self.heap.check_invariants()

    def program_mark(self, label: str) -> None:
        """Record a trace annotation."""
        if self.trace is not None:
            self.trace.record_mark(self.heap.clock, label)

    # Manager move notification ----------------------------------------------

    def _on_manager_move(
        self, obj: HeapObject, old_address: int, new_address: int
    ) -> None:
        self._moves += 1
        if self.observer is not None and self.observer.has_sinks:
            # Emitted before the program's listener so a consequent
            # free (P_F's immediate-free rule) follows its move.
            self.observer.emit(Move(
                object_id=obj.object_id, size=obj.size,
                old_address=old_address, new_address=new_address,
            ))
        if self.trace is not None:
            self.trace.record_move(
                self.heap.clock, obj.object_id, obj.size, old_address, new_address
            )
        if self.program_move_listener is not None:
            self.program_move_listener(obj, old_address, new_address)

    # Entry point ---------------------------------------------------------------

    def run(self, program: AdversaryProgram) -> ExecutionResult:
        """Execute the program to completion and measure.

        With a tracer attached the whole execution sits under one
        ``run`` span, and — when a bus is wired too — a
        :class:`~repro.obs.trace.StageSpanSink` converts the program's
        :class:`~repro.obs.events.StageTransition` events into
        ``stage:*`` child spans, giving the trace per-phase attribution
        without the program knowing about tracers.
        """
        view = ProgramView(self)
        tracer = self.tracer
        stage_sink = None
        if tracer is not None:
            run_span = tracer.begin_unchecked("run", {
                "program": program.name,
                "manager": self.manager.name,
                "live_space": self.params.live_space,
                "max_object": self.params.max_object,
            })
            if self.observer is not None:
                stage_sink = StageSpanSink(tracer)
                self.observer.subscribe(stage_sink)
        start = time.perf_counter()
        program.run(view)
        wall_seconds = time.perf_counter() - start
        if tracer is not None:
            if stage_sink is not None:
                stage_sink.finish()
                self.observer.unsubscribe(stage_sink)
            run_span.set(
                heap_size=self.heap.high_water,
                allocs=self._allocs, frees=self._frees, moves=self._moves,
            )
            tracer.end(run_span)
        return ExecutionResult(
            params=self.params,
            program_name=program.name,
            manager_name=self.manager.name,
            heap_size=self.heap.high_water,
            live_peak=self._live_peak,
            total_allocated=self.heap.total_allocated,
            total_freed=self.heap.total_freed,
            total_moved=self.heap.total_moved,
            allocation_count=self._allocs,
            free_count=self._frees,
            move_count=self._moves,
            budget=self.budget.snapshot(),
            metrics=snapshot(self.heap),
            trace=self.trace,
            wall_seconds=wall_seconds,
        )


def run_execution(
    params: BoundParams,
    program: AdversaryProgram,
    manager: MemoryManager,
    *,
    record_trace: bool = False,
    paranoid: bool = False,
    budget: CompactionBudget | None = None,
    observer: EventBus | None = None,
    tracer: Tracer | None = None,
    kernel: str | None = None,
) -> ExecutionResult:
    """Convenience wrapper: build a driver, run, return the result."""
    driver = ExecutionDriver(
        params, manager, record_trace=record_trace, paranoid=paranoid,
        budget=budget, observer=observer, tracer=tracer, kernel=kernel,
    )
    return driver.run(program)
