"""Compact state encoding and symmetry reduction for the exact game.

The scaled solver (:mod:`repro.exact.solver`) never stores a
``State`` tuple per node.  Each sorted segment tuple is packed into a
single Python integer — 12 bits per segment, ``(address << 6) | size``
with the first segment in the low bits — so interning, transposition
lookups and adjacency all operate on machine-friendly ints.  Sizes are
at least 1, so every 12-bit chunk is non-zero and the encoding is
prefix-free: decoding peels chunks until the integer runs out.  The
empty heap encodes as ``0``.

Symmetry.  The heap ``[0, H)`` has exactly one non-trivial symmetry
that commutes with every game move: **reflection**.  Mirroring a state
(segment ``(a, s)`` maps to ``(H - a - s, s)``) is a game automorphism —
frees, requests and placements all commute with it, and the initial
empty state is self-mirrored — so game values are constant on
``{s, mirror(s)}`` orbits and the solver may explore one canonical
representative (the orientation with the smaller encoding) per orbit.

The stronger "gap-permutation" abstraction — identifying states with
the same multiset of maximal free runs — is **not** sound, which is why
this module stops at reflection.  Permuting gaps is not a graph
automorphism: a free can merge two *adjacent* gaps into one long run,
and which gaps are adjacent depends on the interleaving order that the
multiset forgets.  Two states with identical run multisets can have
different game values; ``tests/exact/test_canonical.py`` pins a
concrete counterexample found by exhaustive search.  The differential
suite (naive vs canonical verdicts) guards the reduction that *is*
used.

Addresses and sizes must fit 6 bits, so the packed encoding supports
heaps up to 63 words — far beyond what attractor computation can
afford anyway (state counts grow like ``2^H``).
"""

from __future__ import annotations

from .game import State

__all__ = [
    "ADDRESS_BITS",
    "SEGMENT_BITS",
    "MAX_HEAP_WORDS",
    "encode_state",
    "decode_state",
    "mirror_state",
    "encode_mirror",
    "canonical_code",
    "canonical_pair",
    "map_placement",
]

#: Bits per address / size field.  6 bits each bounds the solvable
#: heap at 63 words; the attractor explodes long before that.
ADDRESS_BITS = 6
SEGMENT_BITS = 2 * ADDRESS_BITS
MAX_HEAP_WORDS = (1 << ADDRESS_BITS) - 1

_SIZE_MASK = (1 << ADDRESS_BITS) - 1
_CHUNK_MASK = (1 << SEGMENT_BITS) - 1


def check_heap_words(heap_words: int) -> None:
    """Reject heaps the packed encoding cannot address."""
    if heap_words > MAX_HEAP_WORDS:
        raise ValueError(
            f"packed encoding supports heaps up to {MAX_HEAP_WORDS} words, "
            f"got {heap_words}"
        )


def encode_state(state: State) -> int:
    """Pack a sorted segment tuple into one integer (low chunk first)."""
    code = 0
    for address, size in reversed(state):
        code = (code << SEGMENT_BITS) | (address << ADDRESS_BITS) | size
    return code


def decode_state(code: int) -> State:
    """Inverse of :func:`encode_state`."""
    segments = []
    while code:
        chunk = code & _CHUNK_MASK
        segments.append((chunk >> ADDRESS_BITS, chunk & _SIZE_MASK))
        code >>= SEGMENT_BITS
    return tuple(segments)


def mirror_state(state: State, heap_words: int) -> State:
    """The reflected state — sorted, so segment order reverses."""
    return tuple(
        (heap_words - address - size, size)
        for address, size in reversed(state)
    )


def encode_mirror(state: State, heap_words: int) -> int:
    """``encode_state(mirror_state(state, heap_words))`` without building
    the intermediate tuple (hot path)."""
    code = 0
    for address, size in state:
        code = ((code << SEGMENT_BITS)
                | ((heap_words - address - size) << ADDRESS_BITS) | size)
    return code


def canonical_pair(state: State, heap_words: int) -> tuple[int, int]:
    """``(canonical code, other-orientation code)`` for one state.

    The canonical representative of the orbit ``{s, mirror(s)}`` is the
    orientation with the numerically smaller encoding; the second
    element is the encoding of the discarded orientation (equal for
    palindromic states).  Transposition tables key facts by *both*
    orientations because the mirror map depends on ``H`` — see
    :mod:`repro.exact.solver`.
    """
    code = encode_state(state)
    mirrored = encode_mirror(state, heap_words)
    if code <= mirrored:
        return code, mirrored
    return mirrored, code


def canonical_code(state: State, heap_words: int) -> int:
    """Just the canonical orbit representative's encoding."""
    code = encode_state(state)
    mirrored = encode_mirror(state, heap_words)
    return code if code <= mirrored else mirrored


def map_placement(
    address: int, size: int, heap_words: int, mirrored: bool
) -> int:
    """Decanonicalize one placement address.

    Strategies are extracted on canonical representatives; when the
    concrete position at play is the *mirrored* orientation of its
    orbit, the extracted address must reflect back.
    """
    if mirrored:
        return heap_words - address - size
    return address
