"""Optimal manager strategies extracted from the solved game.

Solving the game (:mod:`repro.exact.solver`) does more than produce a
number: outside the program's winning region, every manager node has at
least one placement that stays outside it.  Collecting one such
placement per reachable state yields a *complete optimal strategy* — a
manager that provably serves every program in the family within the
exact minimum heap.

Extraction runs on the canonical solver, so each orbit is solved once
and the strategy is **decanonicalized** afterwards: placements chosen
on the canonical representative are emitted for *both* orientations of
the orbit (the mirrored state gets the reflected address, via
:func:`~repro.exact.canonical.map_placement`), so lookups by the
concrete simulator state always hit regardless of which orientation is
at play.  Extraction solves with the transposition table disabled —
verdict transfer across heap sizes is sound for *values*, but a
strategy needs every node's status derived at this exact ``H``.

:class:`OptimalMicroManager` wraps that strategy as a
:class:`~repro.mm.base.MemoryManager`, so the optimum can be *driven* in
the simulator and compared head-to-head with the classic policies
(see ``bench_optimal_micro``).  Requests outside the solved family
(sizes beyond ``n``, live space beyond ``M``, or positions the strategy
never reached) fall back to first-fit — flagged on the instance so the
tests can assert the optimum never needed the fallback in-family.
"""

from __future__ import annotations

from ..mm.base import MemoryManager, find_first_fit
from .canonical import canonical_code, decode_state, map_placement, mirror_state
from .game import GameConfig, State, _fits, minimum_heap_words
from .solver import Q_FLAG, SIZE_MASK, GameSolver

__all__ = ["solve_strategy", "OptimalMicroManager"]


def solve_strategy(config: GameConfig) -> dict[tuple[State, int], int] | None:
    """An optimal placement per reachable (state, request) — or ``None``
    when the program wins at this heap size (no strategy exists).

    The returned placement keeps the game outside the program's winning
    region, so following it forever never reaches a dead end.  Keys
    cover both orientations of every explored orbit; the placement is
    the lowest safe address on the canonical representative, reflected
    for the mirrored orientation.
    """
    solver = GameSolver(
        config.live_bound, config.max_object,
        power_of_two_sizes=config.power_of_two_sizes, use_tt=False,
    )
    report = solver.solve(config.heap_words)
    if report.program_wins:
        return None
    # Manager-win solves always run to completion (the root is never
    # marked winning mid-flight), so every explored node's status is
    # final — exactly what picking safe placements requires.
    assert report.settled, "manager-win solve stopped early"
    heap_words = config.heap_words
    shift = report.state_shift
    tag_mask = (1 << shift) - 1
    strategy: dict[tuple[State, int], int] = {}
    for key in report.index:
        tag = key & tag_mask
        if not tag & Q_FLAG or report.is_winning(key):
            continue
        size = tag & SIZE_MASK
        rep = decode_state(key >> shift)
        for address in range(heap_words - size + 1):
            if not _fits(rep, address, size, heap_words):
                continue
            placed = tuple(sorted(rep + ((address, size),)))
            child_key = canonical_code(placed, heap_words) << shift
            if report.is_winning(child_key):
                continue
            # Mirror first: for palindromic states both writes share a
            # key and the canonical (lowest-address) choice must win.
            mirrored = mirror_state(rep, heap_words)
            strategy[(mirrored, size)] = map_placement(
                address, size, heap_words, True
            )
            strategy[(rep, size)] = address
            break
        else:  # pragma: no cover - contradicts the attractor computation
            raise AssertionError("losing manager node outside winning region")
    return strategy


class OptimalMicroManager(MemoryManager):
    """Plays the exact optimal strategy for ``P2(M, n)`` micro-heaps.

    Guarantees heap ``<= minimum_heap_words(M, n)`` against *every*
    program in the family — the first provably optimal manager in the
    registry family (for parameters small enough to solve).
    """

    name = "optimal-micro"

    def __init__(self, live_bound: int, max_object: int) -> None:
        super().__init__()
        self.live_bound = live_bound
        self.max_object = max_object
        self.heap_limit = minimum_heap_words(live_bound, max_object)
        config = GameConfig(live_bound, max_object, self.heap_limit)
        strategy = solve_strategy(config)
        assert strategy is not None, "minimum_heap_words returned a loss"
        self._strategy = strategy
        #: Number of requests served outside the solved strategy.
        self.fallbacks = 0

    def _current_state(self) -> State:
        return tuple(
            sorted(
                (obj.address, obj.size)
                for obj in self.heap.objects.live_objects()
            )
        )

    def place(self, size: int) -> int:
        state = self._current_state()
        placement = self._strategy.get((state, size))
        if placement is not None:
            return placement
        self.fallbacks += 1
        return find_first_fit(self.heap, size)
