"""Optimal manager strategies extracted from the solved game.

Solving the game (:mod:`repro.exact.game`) does more than produce a
number: outside the program's winning region, every manager node has at
least one placement that stays outside it.  Collecting one such
placement per reachable state yields a *complete optimal strategy* — a
manager that provably serves every program in the family within the
exact minimum heap.

:class:`OptimalMicroManager` wraps that strategy as a
:class:`~repro.mm.base.MemoryManager`, so the optimum can be *driven* in
the simulator and compared head-to-head with the classic policies
(see ``bench_optimal_micro``).  Requests outside the solved family
(sizes beyond ``n``, live space beyond ``M``, or positions the strategy
never reached) fall back to first-fit — flagged on the instance so the
tests can assert the optimum never needed the fallback in-family.
"""

from __future__ import annotations

from ..mm.base import MemoryManager, find_first_fit
from .game import GameConfig, State, _explore, manager_placements, minimum_heap_words

__all__ = ["solve_strategy", "OptimalMicroManager"]


def solve_strategy(config: GameConfig) -> dict[tuple[State, int], int] | None:
    """An optimal placement per reachable (state, request) — or ``None``
    when the program wins at this heap size (no strategy exists).

    The returned placement keeps the game outside the program's winning
    region, so following it forever never reaches a dead end.
    """
    nodes, successors, predecessors = _explore(config)
    winning: set = set()
    pending_counts = {
        node: len(successors[node]) for node in nodes if node[0] == "Q"
    }
    frontier = [
        node for node in nodes if node[0] == "Q" and not successors[node]
    ]
    winning.update(frontier)
    while frontier:
        node = frontier.pop()
        for pred in predecessors.get(node, ()):
            if pred in winning:
                continue
            if pred[0] == "P":
                winning.add(pred)
                frontier.append(pred)
            else:
                pending_counts[pred] -= 1
                if pending_counts[pred] == 0:
                    winning.add(pred)
                    frontier.append(pred)
    if ("P", ()) in winning:
        return None
    strategy: dict[tuple[State, int], int] = {}
    for node in nodes:
        if node[0] != "Q" or node in winning:
            continue
        _, state, size = node
        for placed in manager_placements(config, state, size):
            if ("P", placed) not in winning:
                # Recover the address from the added segment.
                added = set(placed) - set(state)
                address = next(iter(added))[0]
                strategy[(state, size)] = address
                break
        else:  # pragma: no cover - contradicts the attractor computation
            raise AssertionError("losing manager node outside winning region")
    return strategy


class OptimalMicroManager(MemoryManager):
    """Plays the exact optimal strategy for ``P2(M, n)`` micro-heaps.

    Guarantees heap ``<= minimum_heap_words(M, n)`` against *every*
    program in the family — the first provably optimal manager in the
    registry family (for parameters small enough to solve).
    """

    name = "optimal-micro"

    def __init__(self, live_bound: int, max_object: int) -> None:
        super().__init__()
        self.live_bound = live_bound
        self.max_object = max_object
        self.heap_limit = minimum_heap_words(live_bound, max_object)
        config = GameConfig(live_bound, max_object, self.heap_limit)
        strategy = solve_strategy(config)
        assert strategy is not None, "minimum_heap_words returned a loss"
        self._strategy = strategy
        #: Number of requests served outside the solved strategy.
        self.fallbacks = 0

    def _current_state(self) -> State:
        return tuple(
            sorted(
                (obj.address, obj.size)
                for obj in self.heap.objects.live_objects()
            )
        )

    def place(self, size: int) -> int:
        state = self._current_state()
        placement = self._strategy.get((state, size))
        if placement is not None:
            return placement
        self.fallbacks += 1
        return find_first_fit(self.heap, size)
