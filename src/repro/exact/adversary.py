"""The optimal micro-adversary, extracted from the solved game.

:mod:`repro.exact.strategy` extracts the *manager's* optimal strategy at
the game value ``H*``; this module extracts the *program's* winning
strategy at ``H* - 1`` — by attractor ranks, so following it always
makes progress toward a forced failure.

Like the manager side, extraction runs on the canonical solver (ranks
mode: full exploration, no transposition shortcuts, breadth-first
attractor) and decanonicalizes afterwards: the rank-decreasing move
chosen on each canonical representative is emitted for both
orientations of the orbit, with ``free`` payloads reflected so the
successor state matches the orientation of the key it is filed under.

Driven inside the simulator, the extracted adversary forces **every**
non-moving manager to a heap of at least ``H*``: as long as the manager
keeps placing within ``[0, H* - 1)`` the program replays its winning
strategy on the mapped game state, and the first placement touching
``H* - 1`` or beyond *is* the win (the simulator's heap has no wall, so
"no placement fits" materializes as "the manager had to grow").

Together with :class:`~repro.exact.strategy.OptimalMicroManager`
(heap ``<= H*`` against every program) this realizes the exact game
value from both sides in the simulator — the tightest closure a
reproduction can offer:

    H*  <=  HS(optimal manager, exact adversary)  <=  H*.
"""

from __future__ import annotations

from ..adversary.base import AdversaryProgram, ProgramView
from .canonical import canonical_code, decode_state, mirror_state
from .game import GameConfig, State, minimum_heap_words
from .solver import Q_FLAG, GameSolver

__all__ = ["solve_program_strategy", "ExactAdversaryProgram"]


def solve_program_strategy(
    config: GameConfig,
) -> dict[State, tuple[str, object]] | None:
    """A rank-decreasing winning move per program state, or ``None``
    when the manager wins at this heap size.

    Moves are ``("free", successor_state)`` or ``("request", size)``.
    Following the returned moves strictly decreases the attractor rank,
    so play reaches a dead-end manager node in finitely many steps.
    """
    solver = GameSolver(
        config.live_bound, config.max_object,
        power_of_two_sizes=config.power_of_two_sizes, use_tt=False,
    )
    report = solver.solve(config.heap_words, compute_ranks=True)
    if not report.program_wins:
        return None
    assert report.settled, "ranks solve stopped early"
    heap_words = config.heap_words
    shift = report.state_shift
    tag_mask = (1 << shift) - 1
    strategy: dict[State, tuple[str, object]] = {}
    for key in report.index:
        if key & tag_mask:
            continue  # program nodes only (tag 0)
        node_rank = report.node_rank(key)
        if node_rank is None:
            continue  # outside the winning region
        rep = decode_state(key >> shift)
        best_move: tuple[str, object] | None = None
        best_mirror: tuple[str, object] | None = None
        best_rank: int | None = None
        for index in range(len(rep)):
            child = rep[:index] + rep[index + 1:]
            child_rank = report.node_rank(
                canonical_code(child, heap_words) << shift
            )
            if child_rank is None or child_rank >= node_rank:
                continue
            if best_rank is None or child_rank < best_rank:
                best_rank = child_rank
                best_move = ("free", child)
                best_mirror = ("free", mirror_state(child, heap_words))
        live = sum(size for _, size in rep)
        for size in config.sizes:
            if live + size > config.live_bound:
                continue
            child_rank = report.node_rank(key | Q_FLAG | size)
            if child_rank is None or child_rank >= node_rank:
                continue
            if best_rank is None or child_rank < best_rank:
                best_rank = child_rank
                best_move = ("request", size)
                best_mirror = ("request", size)
        assert best_move is not None, "winning P-node without progress move"
        assert best_mirror is not None
        # Mirror first, so palindromic states keep the canonical move.
        strategy[mirror_state(rep, heap_words)] = best_mirror
        strategy[rep] = best_move
    return strategy


class ExactAdversaryProgram(AdversaryProgram):
    """Plays the extracted winning strategy against real managers.

    Forces ``HS >= minimum_heap_words(M, n)`` against every *non-moving*
    manager (a compacting manager changes the mapped state in ways the
    no-compaction strategy does not model, so the program stops politely
    and keeps whatever heap it has forced when it sees a move).
    """

    name = "exact-adversary"

    def __init__(self, live_bound: int, max_object: int) -> None:
        self.live_bound = live_bound
        self.max_object = max_object
        #: The game value this adversary realizes.
        self.target_heap = minimum_heap_words(live_bound, max_object)
        config = GameConfig(live_bound, max_object, self.target_heap - 1)
        strategy = solve_program_strategy(config)
        assert strategy is not None, (
            "the program must win below the game value"
        )
        self._strategy = strategy
        self._board_limit = self.target_heap - 1
        #: Why the run ended: "forced-growth" is the win.
        self.outcome = "incomplete"

    def run(self, view: ProgramView) -> None:
        moved = {"flag": False}
        view.set_move_listener(
            lambda obj, old, new: moved.__setitem__("flag", True)
        )
        # Game-state mapping: object id -> (address, size) on the board.
        on_board: dict[int, tuple[int, int]] = {}
        safety = 0
        limit = 10 * len(self._strategy) + 100
        while safety < limit:
            safety += 1
            state: State = tuple(sorted(on_board.values()))
            move = self._strategy.get(state)
            if move is None:
                self.outcome = "off-strategy"
                break
            kind, payload = move
            if kind == "free":
                removed = set(state) - set(payload)  # type: ignore[arg-type]
                target_segment = next(iter(removed))
                victim = next(
                    object_id
                    for object_id, segment in on_board.items()
                    if segment == target_segment
                )
                view.free(victim)
                del on_board[victim]
                continue
            size = payload
            obj = view.allocate(size)  # type: ignore[arg-type]
            if moved["flag"]:
                self.outcome = "manager-moved"
                break
            if obj.end > self._board_limit:
                self.outcome = "forced-growth"
                break
            on_board[obj.object_id] = (obj.address, obj.size)
        view.set_move_listener(None)
