"""The optimal micro-adversary, extracted from the solved game.

:mod:`repro.exact.strategy` extracts the *manager's* optimal strategy at
the game value ``H*``; this module extracts the *program's* winning
strategy at ``H* - 1`` — by attractor ranks, so following it always
makes progress toward a forced failure.

Driven inside the simulator, the extracted adversary forces **every**
non-moving manager to a heap of at least ``H*``: as long as the manager
keeps placing within ``[0, H* - 1)`` the program replays its winning
strategy on the mapped game state, and the first placement touching
``H* - 1`` or beyond *is* the win (the simulator's heap has no wall, so
"no placement fits" materializes as "the manager had to grow").

Together with :class:`~repro.exact.strategy.OptimalMicroManager`
(heap ``<= H*`` against every program) this realizes the exact game
value from both sides in the simulator — the tightest closure a
reproduction can offer:

    H*  <=  HS(optimal manager, exact adversary)  <=  H*.
"""

from __future__ import annotations

from ..adversary.base import AdversaryProgram, ProgramView
from .game import GameConfig, State, _explore, minimum_heap_words

__all__ = ["solve_program_strategy", "ExactAdversaryProgram"]


def solve_program_strategy(
    config: GameConfig,
) -> dict[State, tuple[str, object]] | None:
    """A rank-decreasing winning move per program state, or ``None``
    when the manager wins at this heap size.

    Moves are ``("free", successor_state)`` or ``("request", size)``.
    Following the returned moves strictly decreases the attractor rank,
    so play reaches a dead-end manager node in finitely many steps.
    """
    nodes, successors, predecessors = _explore(config)
    rank: dict = {}
    pending_counts = {
        node: len(successors[node]) for node in nodes if node[0] == "Q"
    }
    frontier = [
        node for node in nodes if node[0] == "Q" and not successors[node]
    ]
    for node in frontier:
        rank[node] = 0
    queue = list(frontier)
    while queue:
        node = queue.pop(0)
        for pred in predecessors.get(node, ()):
            if pred in rank:
                continue
            if pred[0] == "P":
                rank[pred] = rank[node] + 1
                queue.append(pred)
            else:
                pending_counts[pred] -= 1
                if pending_counts[pred] == 0:
                    rank[pred] = (
                        max(rank[succ] for succ in successors[pred]) + 1
                    )
                    queue.append(pred)
    if ("P", ()) not in rank:
        return None
    strategy: dict[State, tuple[str, object]] = {}
    for node, node_rank in rank.items():
        if node[0] != "P":
            continue
        state = node[1]
        best_move: tuple[str, object] | None = None
        best_rank: int | None = None
        for successor in successors[node]:
            if successor not in rank or rank[successor] >= node_rank:
                continue
            if best_rank is None or rank[successor] < best_rank:
                best_rank = rank[successor]
                if successor[0] == "P":
                    best_move = ("free", successor[1])
                else:
                    best_move = ("request", successor[2])
        assert best_move is not None, "winning P-node without progress move"
        strategy[state] = best_move
    return strategy


class ExactAdversaryProgram(AdversaryProgram):
    """Plays the extracted winning strategy against real managers.

    Forces ``HS >= minimum_heap_words(M, n)`` against every *non-moving*
    manager (a compacting manager changes the mapped state in ways the
    no-compaction strategy does not model, so the program stops politely
    and keeps whatever heap it has forced when it sees a move).
    """

    name = "exact-adversary"

    def __init__(self, live_bound: int, max_object: int) -> None:
        self.live_bound = live_bound
        self.max_object = max_object
        #: The game value this adversary realizes.
        self.target_heap = minimum_heap_words(live_bound, max_object)
        config = GameConfig(live_bound, max_object, self.target_heap - 1)
        strategy = solve_program_strategy(config)
        assert strategy is not None, (
            "the program must win below the game value"
        )
        self._strategy = strategy
        self._board_limit = self.target_heap - 1
        #: Why the run ended: "forced-growth" is the win.
        self.outcome = "incomplete"

    def run(self, view: ProgramView) -> None:
        moved = {"flag": False}
        view.set_move_listener(
            lambda obj, old, new: moved.__setitem__("flag", True)
        )
        # Game-state mapping: object id -> (address, size) on the board.
        on_board: dict[int, tuple[int, int]] = {}
        safety = 0
        limit = 10 * len(self._strategy) + 100
        while safety < limit:
            safety += 1
            state: State = tuple(sorted(on_board.values()))
            move = self._strategy.get(state)
            if move is None:
                self.outcome = "off-strategy"
                break
            kind, payload = move
            if kind == "free":
                removed = set(state) - set(payload)  # type: ignore[arg-type]
                target_segment = next(iter(removed))
                victim = next(
                    object_id
                    for object_id, segment in on_board.items()
                    if segment == target_segment
                )
                view.free(victim)
                del on_board[victim]
                continue
            size = payload
            obj = view.allocate(size)  # type: ignore[arg-type]
            if moved["flag"]:
                self.outcome = "manager-moved"
                break
            if obj.end > self._board_limit:
                self.outcome = "forced-growth"
                break
            on_board[obj.object_id] = (obj.address, obj.size)
        view.set_move_listener(None)
