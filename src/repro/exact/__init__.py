"""Exact game-theoretic ground truth for micro-heaps.

The paper's model is a program-vs-manager game; this package solves it
*exactly* for tiny parameters (attractor computation on the finite game
graph), giving ground truth that anchors the analytic bounds — see
:mod:`repro.exact.game` for the model and
:mod:`repro.exact.solver` for the scaled engine (canonical orbits,
transposition tables, bracketed search, parallel frontier).
"""

from .adversary import ExactAdversaryProgram, solve_program_strategy
from .budgeted import (
    BudgetedConfig,
    compaction_value_curve,
    minimum_heap_words_budgeted,
    naive_program_wins_budgeted,
    program_wins_budgeted,
)
from .canonical import (
    MAX_HEAP_WORDS,
    canonical_code,
    decode_state,
    encode_state,
    mirror_state,
)
from .game import (
    GameConfig,
    exact_waste_factor,
    manager_placements,
    minimum_heap_words,
    naive_program_wins,
    program_moves,
    program_wins,
)
from .solver import GameSolver, SolveReport, SolveStats, solver_ceiling
from .strategy import OptimalMicroManager, solve_strategy

__all__ = [
    "BudgetedConfig",
    "ExactAdversaryProgram",
    "GameConfig",
    "GameSolver",
    "MAX_HEAP_WORDS",
    "OptimalMicroManager",
    "SolveReport",
    "SolveStats",
    "canonical_code",
    "compaction_value_curve",
    "decode_state",
    "encode_state",
    "exact_waste_factor",
    "manager_placements",
    "minimum_heap_words",
    "minimum_heap_words_budgeted",
    "mirror_state",
    "naive_program_wins",
    "naive_program_wins_budgeted",
    "program_moves",
    "program_wins",
    "program_wins_budgeted",
    "solve_program_strategy",
    "solve_strategy",
    "solver_ceiling",
]
