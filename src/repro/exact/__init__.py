"""Exact game-theoretic ground truth for micro-heaps.

The paper's model is a program-vs-manager game; this package solves it
*exactly* for tiny parameters (attractor computation on the finite game
graph), giving ground truth that anchors the analytic bounds — see
:mod:`repro.exact.game`.
"""

from .adversary import ExactAdversaryProgram, solve_program_strategy
from .budgeted import (
    BudgetedConfig,
    compaction_value_curve,
    minimum_heap_words_budgeted,
    program_wins_budgeted,
)
from .game import (
    GameConfig,
    exact_waste_factor,
    manager_placements,
    minimum_heap_words,
    program_moves,
    program_wins,
)
from .strategy import OptimalMicroManager, solve_strategy

__all__ = [
    "BudgetedConfig",
    "ExactAdversaryProgram",
    "GameConfig",
    "OptimalMicroManager",
    "solve_program_strategy",
    "solve_strategy",
    "compaction_value_curve",
    "exact_waste_factor",
    "manager_placements",
    "minimum_heap_words",
    "minimum_heap_words_budgeted",
    "program_moves",
    "program_wins",
    "program_wins_budgeted",
]
