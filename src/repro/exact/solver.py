"""The scaled attractor solver behind :func:`minimum_heap_words`.

The naive solver in :mod:`repro.exact.game` materializes every state
tuple and a predecessor ``set`` per node; it stops around ``M = 8``.
This module rebuilds the same computation for scale while keeping every
verdict identical (the differential suite in ``tests/exact`` and the
``solver-parity`` CI step enforce that):

**Canonical states.**  Nodes are explored one per reflection orbit
(:mod:`repro.exact.canonical`): mirroring the heap is the one game
automorphism available, and halves the graph.  The stronger multiset
abstraction the paper's prose suggests is unsound — see the canonical
module's docstring.

**Compact encoding.**  A node is a single interned integer —
``state_code << 7 | tag`` with tag ``0`` for program nodes and
``64 | size`` for manager nodes (budgeted games splice a 7-bit budget
between state and tag).  Adjacency is two flat ``array('q')`` edge
lists; the attractor runs over a reverse CSR built by one stable
counting sort (numpy-accelerated when available, bit-identical without
it).  No per-node tuples or sets survive exploration.

**Transposition tables.**  Verdicts transfer across heap sizes: a
state the manager can hold at ``H`` words is safe in any larger heap
(ignore the extra words), and a state the program wins at ``H`` is won
in any smaller heap it fits in.  Each solve harvests its full verdict
map into two tables (``safe``: minimum safe ``H``; ``win``: maximum
winning ``H``) and later solves prune whole subgraphs at discovery
time.  Tables are keyed by *unmirrored* encodings of both orientations
because the mirror map itself depends on ``H``.

**Bracketed search.**  ``2^H``-ish node growth means the largest heap
probed dominates the walk, so :meth:`GameSolver.minimum_heap_words`
probes Robson's closed form first (when it is exact — every point
measured so far — the answer costs two solves: one manager win at the
formula value, one program win just below) and falls back to a
galloped bracket plus binary search, every probe sharing the
transposition tables.  The seeded-region idea from the roadmap is
realized by these tables: safe regions flow up the walk, winning
regions flow down.

**Parallel frontier.**  Exploration is level-synchronous BFS; each
epoch's frontier can be sharded by a mix of the canonical code and
fanned out through :meth:`repro.parallel.engine.ParallelEngine.map`.
Workers only *generate* successor candidates; the parent consumes them
in frontier order, so interning, pruning and truncation decisions are
taken identically at every ``--jobs`` value.
"""

from __future__ import annotations

import os
import time
from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .canonical import (
    ADDRESS_BITS,
    SEGMENT_BITS,
    check_heap_words,
    encode_mirror,
    encode_state,
)
from .game import State

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel.engine import ParallelEngine

__all__ = [
    "GameSolver",
    "SolveReport",
    "SolveStats",
    "solver_ceiling",
    "formula_guess",
]

#: Node-key tag layout: low 7 bits are ``0`` for a program (P) node and
#: ``Q_FLAG | size`` for a manager (Q) node awaiting a placement.
TAG_BITS = 7
Q_FLAG = 1 << 6
SIZE_MASK = Q_FLAG - 1
_CHUNK_MASK = (1 << SEGMENT_BITS) - 1
#: Budgeted games splice the remaining move budget between the state
#: code and the tag, bounding budgets at 127 words.
BUDGET_BITS = 7
MAX_MOVE_BUDGET = (1 << BUDGET_BITS) - 1

# Node status codes.  "Derived" facts are new knowledge harvested into
# the transposition tables; "tt" facts came *from* the tables.
_OPEN = 0
_WIN = 1          # derived winning (attractor / dead end / truncation)
_SAFE_TT = 2      # known safe via the transposition table
_SAFE = 3         # derived safe (manager keeps a safe placement)
_WIN_TT = 4       # known winning via the transposition table

_ENV_NO_NUMPY = "REPRO_SOLVER_NUMPY"


def request_sizes(max_object: int, power_of_two_sizes: bool) -> tuple[int, ...]:
    """The request-size family (mirrors ``GameConfig.sizes``)."""
    if power_of_two_sizes:
        return tuple(
            1 << e for e in range(max_object.bit_length())
            if (1 << e) <= max_object
        )
    return tuple(range(1, max_object + 1))


def solver_ceiling(live_bound: int, max_object: int) -> int:
    """The analytic search ceiling (Robson's bound, rounded up)."""
    log_n = max(1, max_object).bit_length() - 1
    return live_bound * (log_n + 2) + max_object + 1


def formula_guess(live_bound: int, max_object: int) -> int:
    """Robson's closed form ``M (log2 n / 2 + 1) - n + 1``, floored.

    Only a *guess* to aim the bracketed search — correctness never
    depends on it.  Exact at every micro point solved so far.
    """
    log_n = max(1, max_object).bit_length() - 1
    return max(
        live_bound,
        live_bound * (log_n + 2) // 2 - max_object + 1,
    )


def _numpy_csr_enabled() -> bool:
    """Whether the vectorized CSR successor kernel is allowed.

    Value-neutral by contract: both backends are pinned byte-identical
    by the parity suites, so the toggle may stay out of the result
    cache key (``StaticCheckConfig.cache_neutral_env_vars`` declares
    ``REPRO_SOLVER_NUMPY``; the ``cache-key-completeness`` rule holds
    every other env read in solve scope to the digest).
    """
    return os.environ.get(_ENV_NO_NUMPY, "1") != "0"


# ---------------------------------------------------------------------------
# Successor generation (shared by the serial path and pool workers)
# ---------------------------------------------------------------------------

def _node_candidates(
    key: int,
    alt_scode: int,
    heap_words: int,
    live_bound: int,
    sizes: tuple[int, ...],
    move_budget: int | None,
) -> list[int]:
    """Successor candidates of one canonical node, deterministic order.

    ``alt_scode`` is the encoding of the node's *other* orientation
    (its mirror; equal to the canonical code for palindromes) — with
    both orientations of the parent in hand, every child encoding is a
    chunk splice on the parent's packed integers, so the hot path
    builds no intermediate tuples and never re-encodes a state.

    Returns a flat list alternating ``successor_key,
    other_orientation_state_code`` (flat to spare a tuple allocation
    per successor).  Pure function of its arguments, so pool workers
    and the in-process path are interchangeable; duplicates are *not*
    removed here (the parent dedupes while interning).
    """
    if move_budget is None:
        state_shift = TAG_BITS
        mid_bits = 0
    else:
        state_shift = TAG_BITS + BUDGET_BITS
        mid_bits = key & (MAX_MOVE_BUDGET << TAG_BITS)
    tag = key & (Q_FLAG | SIZE_MASK)
    code = key >> state_shift
    mirror = alt_scode
    chunk_bits = SEGMENT_BITS
    addr_bits = ADDRESS_BITS
    rep_addr: list[int] = []
    rep_size: list[int] = []
    remaining = code
    while remaining:
        chunk = remaining & _CHUNK_MASK
        rep_addr.append(chunk >> addr_bits)
        rep_size.append(chunk & SIZE_MASK)
        remaining >>= chunk_bits
    count = len(rep_addr)
    out: list[int] = []
    append = out.append
    if not tag & Q_FLAG:
        # Program node: frees keep the turn, requests hand it over.
        # Freeing segment ``j`` drops chunk ``j`` of the code and chunk
        # ``count-1-j`` of the mirror code (mirror chunks are reversed).
        top = (count - 1) * chunk_bits
        for j in range(count):
            low = j * chunk_bits
            cc = (code & ((1 << low) - 1)) | (
                (code >> (low + chunk_bits)) << low
            )
            high = top - low
            mm = (mirror & ((1 << high) - 1)) | (
                (mirror >> (high + chunk_bits)) << high
            )
            if cc <= mm:
                append((cc << state_shift) | mid_bits)
                append(mm)
            else:
                append((mm << state_shift) | mid_bits)
                append(cc)
        live = sum(rep_size)
        base = (code << state_shift) | mid_bits | Q_FLAG
        for size in sizes:
            if live + size <= live_bound:
                append(base | size)
                append(mirror)
        return out
    size = tag & SIZE_MASK
    if move_budget is not None:
        budget = (key >> TAG_BITS) & MAX_MOVE_BUDGET
        # Moves (stay on turn, spend the moved size from the budget).
        # Cold path — budgeted games are small — so plain tuples.
        rep = tuple(zip(rep_addr, rep_size))
        for index, (seg_address, seg_size) in enumerate(rep):
            if seg_size > budget:
                continue
            rest = rep[:index] + rep[index + 1:]
            child_mid = (budget - seg_size) << TAG_BITS
            for target in range(heap_words - seg_size + 1):
                if target == seg_address:
                    continue
                if not _fits_sorted(rest, target, seg_size):
                    continue
                moved = _insert_sorted(rest, target, seg_size)
                cc = encode_state(moved)
                mm = encode_mirror(moved, heap_words)
                if cc > mm:
                    cc, mm = mm, cc
                append((cc << state_shift) | child_mid | Q_FLAG | size)
                append(mm)
    # Placements (answer the request, yield the turn).  Walk the free
    # gaps of the sorted representative, addresses ascending; placing
    # at rep position ``i`` splices a chunk into the code at position
    # ``i`` and into the mirror code at position ``count - i``.
    chunk_base = size  # (address << ADDRESS_BITS) | size, address = 0
    mirror_base = ((heap_words - size) << addr_bits) | size
    previous_end = 0
    position = 0
    while True:
        if position < count:
            gap_limit = rep_addr[position] - size
        else:
            gap_limit = heap_words - size
        if gap_limit >= previous_end:
            low = position * chunk_bits
            code_low = code & ((1 << low) - 1)
            code_high = (code >> low) << (low + chunk_bits)
            high = (count - position) * chunk_bits
            mirror_low = mirror & ((1 << high) - 1)
            mirror_high = (mirror >> high) << (high + chunk_bits)
            for address in range(previous_end, gap_limit + 1):
                offset = address << addr_bits
                cc = code_low | ((chunk_base + offset) << low) | code_high
                mm = (mirror_low | ((mirror_base - offset) << high)
                      | mirror_high)
                if cc > mm:
                    cc, mm = mm, cc
                append((cc << state_shift) | mid_bits)
                append(mm)
        if position == count:
            break
        previous_end = rep_addr[position] + rep_size[position]
        position += 1
    return out


def _fits_sorted(state: State, address: int, size: int) -> bool:
    """Overlap test against a sorted segment tuple (bounds pre-checked
    by the caller's target range)."""
    end = address + size
    for seg_address, seg_size in state:
        if seg_address >= end:
            return True
        if address < seg_address + seg_size:
            return False
    return True


def _insert_sorted(state: State, address: int, size: int) -> State:
    """Insert a segment into a sorted tuple, preserving order."""
    for index, (seg_address, _) in enumerate(state):
        if seg_address > address:
            return state[:index] + ((address, size),) + state[index:]
    return state + ((address, size),)


def _expand_shard(
    payload: tuple[
        int | None, int, int, tuple[int, ...],
        tuple[tuple[int, int], ...],
    ],
) -> list[tuple[int, list[int]]]:
    """Pool worker: candidate lists for one frontier shard.

    Workers generate; the parent decides.  Everything returned is a
    pure function of the node key and the game parameters, so the
    merge is deterministic regardless of worker scheduling.
    """
    move_budget, heap_words, live_bound, sizes, nodes = payload
    return [
        (key, _node_candidates(key, alt, heap_words, live_bound, sizes,
                               move_budget))
        for key, alt in nodes
    ]


def _shard_of(key: int, shards: int) -> int:
    """Deterministic shard of one canonical node key (Knuth mix)."""
    return ((key >> TAG_BITS) * 2654435761 & 0xFFFFFFFF) % shards


# ---------------------------------------------------------------------------
# Per-solve results
# ---------------------------------------------------------------------------

@dataclass
class SolveStats:
    """Counters from one attractor solve (one heap size)."""

    heap_words: int
    program_wins: bool
    orbits_visited: int = 0
    p_orbits: int = 0
    q_orbits: int = 0
    raw_successors: int = 0
    edges: int = 0
    epochs: int = 0
    frontier_widths: list[int] = field(default_factory=list)
    tt_safe_hits: int = 0
    tt_win_hits: int = 0
    winning_orbits: int = 0
    safe_orbits: int = 0
    wall_seconds: float = 0.0  # lint: float-ok - measurement, not budget
    jobs: int = 1

    @property
    def peak_frontier(self) -> int:
        return max(self.frontier_widths, default=0)

    def as_dict(self) -> dict[str, object]:
        return {
            "heap_words": self.heap_words,
            "program_wins": self.program_wins,
            "orbits_visited": self.orbits_visited,
            "p_orbits": self.p_orbits,
            "q_orbits": self.q_orbits,
            "raw_successors": self.raw_successors,
            "edges": self.edges,
            "epochs": self.epochs,
            "peak_frontier": self.peak_frontier,
            "frontier_widths": list(self.frontier_widths),
            "tt_safe_hits": self.tt_safe_hits,
            "tt_win_hits": self.tt_win_hits,
            "winning_orbits": self.winning_orbits,
            "safe_orbits": self.safe_orbits,
            "wall_seconds": round(self.wall_seconds, 6),
            "jobs": self.jobs,
        }


@dataclass
class SolveReport:
    """One solved heap size, with the tables strategy extraction needs."""

    heap_words: int
    program_wins: bool
    stats: SolveStats
    index: dict[int, int]
    keys: list[int]
    status: bytearray
    rank: list[int] | None
    state_shift: int
    #: True when exploration and attractor ran to completion, so every
    #: node's status is final (strategy extraction requires this);
    #: False when the solve stopped early because the root resolved.
    settled: bool = True

    def node_status(self, key: int) -> int | None:
        node = self.index.get(key)
        return None if node is None else self.status[node]

    def is_winning(self, key: int) -> bool:
        node = self.index.get(key)
        return node is not None and self.status[node] in (_WIN, _WIN_TT)

    def is_explored_safe(self, key: int) -> bool:
        node = self.index.get(key)
        return node is not None and self.status[node] not in (_WIN, _WIN_TT)

    def node_rank(self, key: int) -> int | None:
        if self.rank is None:
            return None
        node = self.index.get(key)
        if node is None:
            return None
        value = self.rank[node]
        return None if value < 0 else value


# ---------------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------------

class GameSolver:
    """Canonical attractor solver for one ``(M, n, family[, budget])``.

    Holds the cross-``H`` transposition tables, so one instance walking
    several heap sizes shares work between them; fresh instances are
    fully independent (the benches construct one per measurement).
    """

    def __init__(
        self,
        live_bound: int,
        max_object: int,
        *,
        power_of_two_sizes: bool = True,
        move_budget: int | None = None,
        use_tt: bool = True,
        engine: "ParallelEngine | None" = None,
    ) -> None:
        if live_bound < 1:
            raise ValueError("live_bound must be at least 1")
        if not 1 <= max_object <= live_bound:
            raise ValueError("need 1 <= max_object <= live_bound")
        if max_object > SIZE_MASK:
            raise ValueError(
                f"packed encoding bounds max_object at {SIZE_MASK}"
            )
        if move_budget is not None and not 0 <= move_budget <= MAX_MOVE_BUDGET:
            raise ValueError(
                f"need 0 <= move_budget <= {MAX_MOVE_BUDGET}"
            )
        self.live_bound = live_bound
        self.max_object = max_object
        self.power_of_two_sizes = power_of_two_sizes
        self.move_budget = move_budget
        self.sizes = request_sizes(max_object, power_of_two_sizes)
        self.use_tt = use_tt
        self.engine = engine
        self._state_shift = (
            TAG_BITS if move_budget is None else TAG_BITS + BUDGET_BITS
        )
        #: unmirrored node key -> minimum heap where the manager holds it
        self._safe_tt: dict[int, int] = {}
        #: unmirrored node key -> maximum heap where the program wins it
        self._win_tt: dict[int, int] = {}
        # Verdict watermarks: program wins below, manager wins above.
        self._max_program_win = live_bound - 1
        self._min_manager_win: int | None = None
        self._value: int | None = None
        #: :class:`SolveStats` of every real solve, in order.
        self.history: list[SolveStats] = []

    # -- public API ---------------------------------------------------------

    def program_wins(self, heap_words: int) -> bool:
        """Verdict at one heap size (watermark-cached across calls)."""
        if heap_words <= self._max_program_win:
            return True
        if (self._min_manager_win is not None
                and heap_words >= self._min_manager_win):
            return False
        return self.solve(heap_words).program_wins

    def minimum_heap_words(self, *, search: str = "auto") -> int:
        """The exact game value — least ``H`` where the manager wins.

        ``search`` picks the walk: ``"auto"`` brackets around the
        analytic guess (default), ``"gallop"`` doubles upward from
        ``M`` then bisects, ``"linear"`` replays the naive upward walk.
        All three share the transposition tables and return identical
        values; only the probe sequence (and hence the wall clock)
        differs.
        """
        if self._value is not None:
            return self._value
        if search == "linear":
            value = self._search_linear()
        elif search == "gallop":
            value = self._search_bracket(self.live_bound)
        elif search == "auto":
            value = self._search_bracket(
                min(formula_guess(self.live_bound, self.max_object),
                    self.ceiling())
            )
        else:
            raise ValueError(f"unknown search mode: {search!r}")
        self._value = value
        return value

    def ceiling(self) -> int:
        return solver_ceiling(self.live_bound, self.max_object)

    # -- search strategies --------------------------------------------------

    def _search_linear(self) -> int:
        heap = self.live_bound
        ceiling = self.ceiling()
        while heap <= ceiling:
            if not self.program_wins(heap):
                return heap
            heap += 1
        raise AssertionError(
            "exact search exceeded the analytic ceiling — solver bug"
        )

    def _search_bracket(self, guess: int) -> int:
        """Bracket the game value around ``guess``.

        The guess is probed first: when it is exact (every point
        measured so far), the walk costs one full solve at the guess
        plus one verify solve just below it — and the verify solve is
        truncated by the winning orbits the first solve harvested
        (program wins transfer to smaller heaps, and every placement
        into a known-winning position prunes at discovery).  When the
        guess is off, the gallop/bisection probes keep sharing the
        tables: manager-win solves seed safe facts for the larger
        probes, program-win solves seed winning facts for the smaller
        ones.
        """
        ceiling = self.ceiling()
        if not self.program_wins(guess):
            # Manager wins at the guess; the value is at or below it.
            if guess == self.live_bound or self.program_wins(guess - 1):
                return guess
            low = self.live_bound - 1  # virtual program win below M
            high = guess - 1
        else:
            low = guess
            step = 1
            high = None
            while high is None:
                probe = min(low + step, ceiling)
                if not self.program_wins(probe):
                    high = probe
                elif probe >= ceiling:
                    raise AssertionError(
                        "exact search exceeded the analytic ceiling — "
                        "solver bug"
                    )
                else:
                    low = probe
                    step *= 2
        while high - low > 1:
            mid = (high + low) // 2
            if self.program_wins(mid):
                low = mid
            else:
                high = mid
        return high

    # -- the solve ----------------------------------------------------------

    def solve(
        self,
        heap_words: int,
        *,
        compute_ranks: bool = False,
        use_tt: bool | None = None,
    ) -> SolveReport:
        """Explore the canonical game graph at ``heap_words`` and run
        the full attractor.

        ``compute_ranks`` switches the attractor to FIFO order and
        records per-node attractor ranks (strategy extraction needs
        them); it also disables truncation-by-known-winner so ranks
        match the naive definition.  ``use_tt`` overrides the
        instance-wide setting; extraction solves pass ``False`` so the
        explored graph covers every reachable orbit.
        """
        check_heap_words(heap_words)
        if heap_words < self.live_bound:
            raise ValueError(
                "heap_words below live_bound is trivially unwinnable"
            )
        tt_enabled = self.use_tt if use_tt is None else use_tt
        if compute_ranks:
            tt_enabled = False
        started = time.perf_counter()  # lint: float-ok - wall timing
        heap = heap_words
        shift = self._state_shift
        low_mask = (1 << shift) - 1
        safe_tt = self._safe_tt
        win_tt = self._win_tt
        sizes = self.sizes
        live_bound = self.live_bound
        move_budget = self.move_budget

        index: dict[int, int] = {}
        keys: list[int] = []
        alts: list[int] = []
        status = bytearray()
        pending: list[int] = []
        edge_src = array("q")
        edge_dst = array("q")
        seeds: list[int] = []
        frontier: list[int] = []

        stats = SolveStats(heap_words=heap, program_wins=False,
                           jobs=self._effective_jobs())
        # Tables only fill at harvest, so within one solve the read
        # guard is stable; the first solve skips the lookups entirely.
        tt_read = tt_enabled and bool(safe_tt or win_tt)

        def discover(ckey: int, alt_code: int) -> int:
            # Callers check ``index`` first; this is the miss path.
            state = _OPEN
            if tt_read:
                alt_key = (alt_code << shift) | (ckey & low_mask)
                known = safe_tt.get(ckey)
                if (known is not None and known <= heap) or (
                    alt_key != ckey
                    and (known := safe_tt.get(alt_key)) is not None
                    and known <= heap
                ):
                    state = _SAFE_TT
                    stats.tt_safe_hits += 1
                else:
                    known = win_tt.get(ckey)
                    if (known is not None and known >= heap) or (
                        alt_key != ckey
                        and (known := win_tt.get(alt_key)) is not None
                        and known >= heap
                    ):
                        state = _WIN_TT
                        stats.tt_win_hits += 1
            node = len(keys)
            index[ckey] = node
            keys.append(ckey)
            alts.append(alt_code)
            status.append(state)
            pending.append(0)
            if state == _OPEN:
                frontier.append(node)
            elif state == _WIN_TT:
                seeds.append(node)
            return node

        root_key = (
            0 if move_budget is None else move_budget << TAG_BITS
        )
        discover(root_key, 0)

        # -- level-synchronous exploration ---------------------------------
        # Candidate lists are NOT deduplicated: a duplicate successor
        # adds a duplicate edge, which increments ``alive`` and is
        # decremented once per occurrence by the attractor, so pending
        # counts stay consistent and verdicts are unaffected.
        #
        # Two exploration paths produce identical decisions: a fused
        # generate-and-consume loop (serial base game — no candidate
        # lists are materialized and truncation stops *generation*,
        # not just consumption), and a two-phase path over
        # :func:`_node_candidates` output used for parallel epochs and
        # budgeted games.  ``raw_successors`` counts candidates
        # actually generated, so it may legitimately differ across
        # ``--jobs`` values (parallel workers over-generate truncated
        # tails); verdicts, orbit and edge counts do not.
        index_get = index.get
        src_append = edge_src.append
        dst_append = edge_dst.append
        seeds_append = seeds.append
        raw_successors = 0
        engine = self.engine
        fuse_serial = move_budget is None
        chunk_bits = SEGMENT_BITS
        addr_bits = ADDRESS_BITS
        settled = True  # exploration + attractor ran to completion
        while frontier:
            if status[0] != _OPEN and not compute_ranks:
                # The root resolved during exploration (possible with
                # warm tables): the verdict is already known, so stop
                # expanding; unsettled statuses are excluded from the
                # harvest below.
                settled = False
                break
            current = frontier
            frontier = []
            stats.epochs += 1
            stats.frontier_widths.append(len(current))
            if (engine is not None and engine.jobs > 1
                    and len(current) >= engine.jobs * 8) or not fuse_serial:
                candidate_lists = self._expand_epoch(
                    current, keys, alts, heap
                )
                for position, node in enumerate(current):
                    candidates = candidate_lists[position]
                    flat_length = len(candidates)
                    raw_successors += flat_length >> 1
                    if keys[node] & Q_FLAG:
                        alive = 0
                        for cursor in range(0, flat_length, 2):
                            ckey = candidates[cursor]
                            child = index_get(ckey)
                            if child is None:
                                child = discover(
                                    ckey, candidates[cursor + 1]
                                )
                            child_status = status[child]
                            if (child_status == _SAFE_TT
                                    or child_status == _SAFE):
                                # Some answer is provably safe: this
                                # manager node is safe; stop.
                                status[node] = _SAFE
                                alive = -1
                                break
                            if (child_status == _WIN
                                    or child_status == _WIN_TT
                                    ) and not compute_ranks:
                                # Known lost answer: skipping the edge
                                # pre-pays the attractor's pending
                                # decrement.  (Ranks mode keeps the
                                # edge so Q ranks match the naive
                                # max-over-successors definition.)
                                continue
                            src_append(node)
                            dst_append(child)
                            alive += 1
                        if alive == 0:
                            # No placement helps (dead end, or every
                            # answer known winning): the program wins.
                            status[node] = _WIN
                            seeds_append(node)
                        elif alive > 0:
                            pending[node] = alive
                    else:
                        for cursor in range(0, flat_length, 2):
                            ckey = candidates[cursor]
                            child = index_get(ckey)
                            if child is None:
                                child = discover(
                                    ckey, candidates[cursor + 1]
                                )
                            child_status = status[child]
                            if (child_status == _WIN
                                    or child_status == _WIN_TT):
                                if not compute_ranks:
                                    # Some move is provably winning:
                                    # this program node wins; stop.
                                    status[node] = _WIN
                                    seeds_append(node)
                                    break
                                src_append(node)
                                dst_append(child)
                            elif (child_status != _SAFE_TT
                                  and child_status != _SAFE):
                                src_append(node)
                                dst_append(child)
                continue
            # Fused serial path (base game).  Mirrors
            # :func:`_node_candidates` exactly — same chunk splices,
            # same order — with the consumption decisions inlined.
            # Chunks are non-zero, so the segment count falls out of
            # ``bit_length`` and states are peeled without temporary
            # lists; within one gap, consecutive child encodings
            # differ by a constant, so the inner loop steps two
            # cursors instead of re-splicing.
            for node in current:
                key = keys[node]
                code = key >> shift
                mirror = alts[node]
                count = (
                    (code.bit_length() + chunk_bits - 1) // chunk_bits
                )
                if key & Q_FLAG:
                    # Manager node: placements, gap by gap.
                    size = key & SIZE_MASK
                    mirror_base = ((heap - size) << addr_bits) | size
                    alive = 0
                    previous_end = 0
                    position = 0
                    remaining = code
                    while True:
                        if position < count:
                            chunk = remaining & _CHUNK_MASK
                            gap_limit = (chunk >> addr_bits) - size
                        else:
                            gap_limit = heap - size
                        if gap_limit >= previous_end:
                            low = position * chunk_bits
                            high = (count - position) * chunk_bits
                            start = previous_end << addr_bits
                            cc_cursor = (
                                (code & ((1 << low) - 1))
                                | ((size + start) << low)
                                | ((code >> low) << (low + chunk_bits))
                            )
                            mm_cursor = (
                                (mirror & ((1 << high) - 1))
                                | ((mirror_base - start) << high)
                                | ((mirror >> high) << (high + chunk_bits))
                            )
                            cc_step = 1 << (low + addr_bits)
                            mm_step = 1 << (high + addr_bits)
                            raw_successors += gap_limit + 1 - previous_end
                            for _ in range(previous_end, gap_limit + 1):
                                cc = cc_cursor
                                mm = mm_cursor
                                cc_cursor += cc_step
                                mm_cursor -= mm_step
                                if cc > mm:
                                    cc, mm = mm, cc
                                ckey = cc << shift
                                child = index_get(ckey)
                                if child is None:
                                    child = discover(ckey, mm)
                                child_status = status[child]
                                if (child_status == _SAFE_TT
                                        or child_status == _SAFE):
                                    status[node] = _SAFE
                                    alive = -1
                                    break
                                if (child_status == _WIN
                                        or child_status == _WIN_TT):
                                    # Known lost placement: skip the
                                    # edge (pre-paid decrement).
                                    continue
                                src_append(node)
                                dst_append(child)
                                alive += 1
                            if alive < 0:
                                break
                        if position == count:
                            break
                        previous_end = (
                            (chunk >> addr_bits) + (chunk & SIZE_MASK)
                        )
                        remaining >>= chunk_bits
                        position += 1
                    if alive == 0:
                        status[node] = _WIN
                        seeds_append(node)
                    elif alive > 0:
                        pending[node] = alive
                    continue
                # Program node: frees, then requests.
                top = (count - 1) * chunk_bits
                truncated = False
                for j in range(count):
                    low = j * chunk_bits
                    cc = (code & ((1 << low) - 1)) | (
                        (code >> (low + chunk_bits)) << low
                    )
                    high = top - low
                    mm = (mirror & ((1 << high) - 1)) | (
                        (mirror >> (high + chunk_bits)) << high
                    )
                    raw_successors += 1
                    if cc > mm:
                        cc, mm = mm, cc
                    ckey = cc << shift
                    child = index_get(ckey)
                    if child is None:
                        child = discover(ckey, mm)
                    child_status = status[child]
                    if child_status == _WIN or child_status == _WIN_TT:
                        if not compute_ranks:
                            status[node] = _WIN
                            seeds_append(node)
                            truncated = True
                            break
                        src_append(node)
                        dst_append(child)
                    elif (child_status != _SAFE_TT
                          and child_status != _SAFE):
                        src_append(node)
                        dst_append(child)
                if truncated:
                    continue
                live = 0
                remaining = code
                while remaining:
                    live += remaining & SIZE_MASK
                    remaining >>= chunk_bits
                base = key | Q_FLAG
                for size in sizes:
                    if live + size > live_bound:
                        continue
                    ckey = base | size
                    raw_successors += 1
                    child = index_get(ckey)
                    if child is None:
                        child = discover(ckey, mirror)
                    child_status = status[child]
                    if child_status == _WIN or child_status == _WIN_TT:
                        if not compute_ranks:
                            status[node] = _WIN
                            seeds_append(node)
                            break
                        src_append(node)
                        dst_append(child)
                    elif (child_status != _SAFE_TT
                          and child_status != _SAFE):
                        src_append(node)
                        dst_append(child)

        stats.raw_successors = raw_successors
        stats.edges = len(edge_dst)

        # -- attractor over the reverse CSR --------------------------------
        rank: list[int] | None = None
        if compute_ranks or settled:
            rev_offsets, rev = _reverse_csr(len(keys), edge_src, edge_dst)
        if compute_ranks:
            rank = [-1] * len(keys)
            for seed in seeds:
                rank[seed] = 0
            queue: deque[int] = deque(seeds)
            while queue:
                node = queue.popleft()
                next_rank = rank[node] + 1
                for position in range(rev_offsets[node],
                                      rev_offsets[node + 1]):
                    pred = rev[position]
                    if status[pred] != _OPEN:
                        continue
                    if keys[pred] & Q_FLAG:
                        pending[pred] -= 1
                        if pending[pred]:
                            continue
                    status[pred] = _WIN
                    rank[pred] = next_rank
                    queue.append(pred)
        elif settled:
            stack = list(seeds)
            early = False
            while stack and not early:
                node = stack.pop()
                for position in range(rev_offsets[node],
                                      rev_offsets[node + 1]):
                    pred = rev[position]
                    if status[pred] != _OPEN:
                        continue
                    if keys[pred] & Q_FLAG:
                        pending[pred] -= 1
                        if pending[pred]:
                            continue
                    status[pred] = _WIN
                    if pred == 0:
                        # Root verdict settled — the rest of the
                        # attractor would only enlarge the harvest.
                        early = True
                        break
                    stack.append(pred)
            if early:
                settled = False

        # -- harvest verdicts into the transposition tables -----------------
        # After a completed attractor, ``_OPEN`` means the winning
        # region never reached the node: safe, by the greatest-
        # fixpoint reading of the safety game.  After an early exit
        # (``settled`` false) only explicitly derived statuses are
        # sound, so ``_OPEN`` nodes are left out of the harvest.
        wins = status[0] in (_WIN, _WIN_TT)
        stats.program_wins = wins
        stats.orbits_visited = len(keys)
        q_flag = Q_FLAG
        for node, key in enumerate(keys):
            if key & q_flag:
                stats.q_orbits += 1
            else:
                stats.p_orbits += 1
            node_status = status[node]
            if node_status == _WIN:
                stats.winning_orbits += 1
                if tt_enabled:
                    alt_key = (alts[node] << shift) | (key & low_mask)
                    _record(win_tt, key, alt_key, heap, maximum=True)
            elif node_status == _WIN_TT:
                stats.winning_orbits += 1
            elif node_status == _OPEN:
                if settled:
                    stats.safe_orbits += 1
                    if tt_enabled:
                        alt_key = (alts[node] << shift) | (key & low_mask)
                        _record(safe_tt, key, alt_key, heap, maximum=False)
            elif node_status == _SAFE:
                stats.safe_orbits += 1
                if tt_enabled:
                    alt_key = (alts[node] << shift) | (key & low_mask)
                    _record(safe_tt, key, alt_key, heap, maximum=False)
            else:
                stats.safe_orbits += 1

        if wins:
            if heap > self._max_program_win:
                self._max_program_win = heap
        elif (self._min_manager_win is None
              or heap < self._min_manager_win):
            self._min_manager_win = heap
        stats.wall_seconds = (  # lint: float-ok - wall timing
            time.perf_counter() - started)
        self.history.append(stats)
        return SolveReport(
            heap_words=heap,
            program_wins=wins,
            stats=stats,
            index=index,
            keys=keys,
            status=status,
            rank=rank,
            state_shift=shift,
            settled=settled,
        )

    # -- internals ----------------------------------------------------------

    def _effective_jobs(self) -> int:
        return self.engine.jobs if self.engine is not None else 1

    def _expand_epoch(
        self,
        current: list[int],
        keys: list[int],
        alts: list[int],
        heap: int,
    ) -> list[list[tuple[int, int]]]:
        """Candidate lists for one frontier, in frontier order."""
        engine = self.engine
        if (engine is None or engine.jobs <= 1
                or len(current) < engine.jobs * 8):
            generate = _node_candidates
            sizes = self.sizes
            live_bound = self.live_bound
            move_budget = self.move_budget
            return [
                generate(keys[node], alts[node], heap, live_bound, sizes,
                         move_budget)
                for node in current
            ]
        shard_count = min(engine.jobs * 4, len(current))
        shards: list[list[tuple[int, int]]] = [
            [] for _ in range(shard_count)
        ]
        for node in current:
            key = keys[node]
            shards[_shard_of(key, shard_count)].append((key, alts[node]))
        payloads = [
            (self.move_budget, heap, self.live_bound, self.sizes,
             tuple(shard))
            for shard in shards if shard
        ]
        produced = engine.map(_expand_shard, payloads)
        by_key: dict[int, list[tuple[int, int]]] = {}
        for shard_result in produced:
            for key, candidates in shard_result:
                by_key[key] = candidates
        return [by_key[keys[node]] for node in current]


def _record(
    table: dict[int, int],
    key: int,
    alt_key: int,
    heap: int,
    *,
    maximum: bool,
) -> None:
    """Record one verdict under both orientations of the node's orbit."""
    known = table.get(key)
    if known is None or (known < heap if maximum else known > heap):
        table[key] = heap
    if alt_key != key:
        known = table.get(alt_key)
        if known is None or (known < heap if maximum else known > heap):
            table[alt_key] = heap


def _reverse_csr(
    node_count: int, edge_src: "array[int]", edge_dst: "array[int]"
) -> tuple[list[int], list[int]]:
    """Predecessor lists in CSR form, grouped by destination.

    Stable in edge-insertion order within each destination, so the
    numpy fast path (stable argsort) and the pure-Python counting sort
    produce identical attractor traversals.
    """
    edge_count = len(edge_dst)
    if edge_count == 0:
        return [0] * (node_count + 1), []
    if _numpy_csr_enabled():
        try:
            import numpy
        except ImportError:
            numpy = None
        if numpy is not None:
            dst = numpy.frombuffer(edge_dst, dtype=numpy.int64)
            src = numpy.frombuffer(edge_src, dtype=numpy.int64)
            order = numpy.argsort(dst, kind="stable")
            rev = src[order].tolist()
            counts = numpy.bincount(dst, minlength=node_count)
            offsets_array = numpy.zeros(node_count + 1, dtype=numpy.int64)
            numpy.cumsum(counts, out=offsets_array[1:])
            return offsets_array.tolist(), rev
    counts = [0] * (node_count + 1)
    for dst_node in edge_dst:
        counts[dst_node + 1] += 1
    for position in range(1, node_count + 1):
        counts[position] += counts[position - 1]
    offsets = list(counts)
    cursor = list(counts[:-1])
    rev = [0] * edge_count
    for position in range(edge_count):
        dst_node = edge_dst[position]
        rev[cursor[dst_node]] = edge_src[position]
        cursor[dst_node] += 1
    return offsets, rev
