"""Exact micro-heap game values *with compaction*.

The no-compaction game (:mod:`repro.exact.game`) extends naturally to
budgeted compaction when the budget is an **absolute** number of words
``B`` (the fractional c-partial budget grows without bound and would
make the state space infinite).  Manager nodes gain move actions:

* ``move(object, address)`` — relocate one live object into free space
  (ordinary moves) or slide it (overlap with its own words allowed),
  spending its size from the remaining budget and staying on turn;
* ``place(address)`` — answer the pending request and yield the turn.

Budget strictly decreases per move, so manager-only chains are finite
and the whole graph stays finite.  The attractor computation is the
same as the base game.

:func:`minimum_heap_words_budgeted` is therefore the exact ground truth
for *the value of compaction*: how many words of heap one word of move
budget buys at micro scale.  Anchors (tested):

* ``B = 0`` coincides with the no-compaction game;
* the value is monotone non-increasing in ``B``;
* with enough budget the manager reaches the live-space optimum ``M``
  (it can always compact everything to the bottom).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .game import GameConfig, State, program_moves

__all__ = [
    "BudgetedConfig",
    "budgeted_manager_actions",
    "naive_program_wins_budgeted",
    "program_wins_budgeted",
    "minimum_heap_words_budgeted",
    "compaction_value_curve",
]


@dataclass(frozen=True)
class BudgetedConfig:
    """A :class:`~repro.exact.game.GameConfig` plus an absolute budget."""

    base: GameConfig
    move_budget: int

    def __post_init__(self) -> None:
        if self.move_budget < 0:
            raise ValueError("move_budget must be non-negative")


def _fits_except(
    state: State, skip_index: int, address: int, size: int, heap_words: int
) -> bool:
    """Whether ``[address, address+size)`` is free once the ``skip``-th
    segment vacates (slide semantics)."""
    if address < 0 or address + size > heap_words:
        return False
    end = address + size
    for index, (seg_address, seg_size) in enumerate(state):
        if index == skip_index:
            continue
        if address < seg_address + seg_size and seg_address < end:
            return False
    return True


def budgeted_manager_actions(
    config: BudgetedConfig, state: State, size: int, budget: int
) -> list[tuple[str, State, int]]:
    """Manager options at ``(state, pending size, remaining budget)``.

    Returns ``("move", new_state, new_budget)`` and
    ``("place", new_state, budget)`` tuples.
    """
    heap_words = config.base.heap_words
    actions: list[tuple[str, State, int]] = []
    # Moves (stay on turn).
    for index, (seg_address, seg_size) in enumerate(state):
        if seg_size > budget:
            continue
        for target in range(heap_words - seg_size + 1):
            if target == seg_address:
                continue
            if _fits_except(state, index, target, seg_size, heap_words):
                moved = tuple(
                    sorted(
                        state[:index]
                        + ((target, seg_size),)
                        + state[index + 1:]
                    )
                )
                actions.append(("move", moved, budget - seg_size))
    # Placements (end of turn).
    for address in range(heap_words - size + 1):
        if _fits_except(state, -1, address, size, heap_words):
            placed = tuple(sorted(state + ((address, size),)))
            actions.append(("place", placed, budget))
    return actions


def naive_program_wins_budgeted(config: BudgetedConfig) -> bool:
    """Reference verdict over the concrete budgeted game graph.

    Nodes: ``("P", state, budget)`` and ``("Q", state, size, budget)``.
    The program wins a manager node only if *every* action (moves and
    placements alike) leads into its winning region; a manager node with
    no placement *and* no useful move is an immediate program win.
    Kept as the differential-test reference for the scaled route.
    """
    initial = ("P", (), config.move_budget)
    nodes = {initial}
    successors: dict = {}
    predecessors: dict = {initial: set()}
    stack = [initial]
    while stack:
        node = stack.pop()
        outs = []
        if node[0] == "P":
            _, state, budget = node
            for kind, payload in program_moves(config.base, state):
                if kind == "free":
                    outs.append(("P", payload, budget))
                else:
                    outs.append(("Q", state, payload, budget))
        else:
            _, state, size, budget = node
            for kind, new_state, new_budget in budgeted_manager_actions(
                config, state, size, budget
            ):
                if kind == "move":
                    outs.append(("Q", new_state, size, new_budget))
                else:
                    outs.append(("P", new_state, new_budget))
        successors[node] = outs
        for nxt in outs:
            predecessors.setdefault(nxt, set()).add(node)
            if nxt not in nodes:
                nodes.add(nxt)
                stack.append(nxt)
    winning: set = set()
    pending_counts = {
        node: len(successors[node]) for node in nodes if node[0] == "Q"
    }
    frontier = [
        node for node in nodes if node[0] == "Q" and not successors[node]
    ]
    winning.update(frontier)
    while frontier:
        node = frontier.pop()
        for pred in predecessors.get(node, ()):
            if pred in winning:
                continue
            if pred[0] == "P":
                winning.add(pred)
                frontier.append(pred)
            else:
                pending_counts[pred] -= 1
                if pending_counts[pred] == 0:
                    winning.add(pred)
                    frontier.append(pred)
    return initial in winning


def program_wins_budgeted(config: BudgetedConfig) -> bool:
    """Whether the program beats every ``B``-budgeted manager at ``H``.

    Routed through the scaled :class:`~repro.exact.solver.GameSolver`
    (budget folded into the node key); parameters beyond the packed
    encoding fall back to :func:`naive_program_wins_budgeted`.
    """
    from .canonical import MAX_HEAP_WORDS
    from .solver import MAX_MOVE_BUDGET, GameSolver

    base = config.base
    if (base.heap_words > MAX_HEAP_WORDS
            or config.move_budget > MAX_MOVE_BUDGET):
        return naive_program_wins_budgeted(config)
    solver = GameSolver(
        base.live_bound, base.max_object,
        power_of_two_sizes=base.power_of_two_sizes,
        move_budget=config.move_budget,
    )
    return solver.program_wins(base.heap_words)


@lru_cache(maxsize=None)
def minimum_heap_words_budgeted(
    live_bound: int, max_object: int, move_budget: int
) -> int:
    """The least heap within which some B-bounded manager always wins."""
    from .canonical import MAX_HEAP_WORDS
    from .solver import MAX_MOVE_BUDGET, GameSolver, solver_ceiling

    if (solver_ceiling(live_bound, max_object) <= MAX_HEAP_WORDS
            and move_budget <= MAX_MOVE_BUDGET):
        solver = GameSolver(
            live_bound, max_object, move_budget=move_budget
        )
        return solver.minimum_heap_words()
    heap = live_bound
    log_n = max(1, max_object).bit_length() - 1
    ceiling = live_bound * (log_n + 2) + max_object + 1
    while heap <= ceiling:
        config = BudgetedConfig(
            GameConfig(live_bound, max_object, heap), move_budget
        )
        if not naive_program_wins_budgeted(config):
            return heap
        heap += 1
    raise AssertionError("budgeted search exceeded the ceiling — solver bug")


def compaction_value_curve(
    live_bound: int, max_object: int, max_budget: int
) -> list[tuple[int, int]]:
    """``(B, exact minimum heap)`` for ``B = 0 .. max_budget``.

    The executable answer to "what does a word of compaction buy?" at
    micro scale — the exact analogue of the paper's Figure-1 tradeoff.
    """
    return [
        (budget, minimum_heap_words_budgeted(live_bound, max_object, budget))
        for budget in range(max_budget + 1)
    ]
