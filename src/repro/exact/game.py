"""Exact worst-case heap requirements for micro-heaps, by game solving.

The paper's framework (§2.1) is literally a two-player game: the
*program* (maximizer) issues frees and allocation requests; the *memory
manager* (minimizer) answers placements.  ``HS`` is the value of that
game.  For real parameters the game is astronomically large — that is
why the paper proves bounds — but for micro parameters (``M <= ~8``,
``n <= 4``, heap limits around a dozen words) it can be solved *exactly*
by attractor computation on the finite game graph.

This module answers: *what is the smallest heap ``H`` within which some
manager can serve every program in* :math:`P_2(M, n)` *without
compaction?*  Formally a safety game:

* **program nodes** — the program may free any live object (staying on
  turn) or request any admissible size (handing the turn over);
* **manager nodes** — the manager must place the requested object at
  some free address in ``[0, H)``; if no placement exists the program
  has won;
* infinite play means the manager wins (the program must force a
  failure in finitely many steps).

The program's winning region is the least fixpoint of the classic
attractor operator; :func:`minimum_heap_words` finds the least winning
``H``.  Ground truth from this solver anchors the analytic bounds:
Robson's formula is exact in the limit, and the tests check the solver
brackets it correctly at tiny scale.

Two implementations coexist.  :func:`naive_program_wins` is the
original tuple-keyed explorer — slow, obviously correct, kept as the
reference for the parity tool and the differential tests.  The public
entry points (:func:`program_wins`, :func:`minimum_heap_words`) route
through the scaled :class:`~repro.exact.solver.GameSolver` (canonical
orbits, packed encodings, transposition tables, bracketed search) and
fall back to the naive walk only when the heap exceeds the packed
encoding's 63-word limit.

No compaction: adding budgeted moves makes the state space infinite
(the budget accrues without bound).  The absolute-budget variant lives
in :mod:`repro.exact.budgeted`; the c-partial regime is covered by the
simulation experiments instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import Iterator

__all__ = [
    "GameConfig",
    "State",
    "program_moves",
    "manager_placements",
    "naive_program_wins",
    "program_wins",
    "minimum_heap_words",
    "exact_waste_factor",
]

#: Sorted tuple of live ``(address, size)`` segments — one game position.
State = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class GameConfig:
    """Parameters of one exact game.

    ``live_bound`` is the paper's ``M``; ``max_object`` is ``n``;
    ``heap_words`` is the candidate heap size ``H`` being tested;
    ``power_of_two_sizes`` restricts requests to the ``P2`` family
    (the paper's lower-bound setting).
    """

    live_bound: int
    max_object: int
    heap_words: int
    power_of_two_sizes: bool = True
    #: The request sizes the program may issue.  Precomputed here —
    #: ``program_moves`` consults it once per node expansion, so a
    #: recomputing property sat directly on the hot loop.
    sizes: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.live_bound < 1:
            raise ValueError("live_bound must be at least 1")
        if not 1 <= self.max_object <= self.live_bound:
            raise ValueError("need 1 <= max_object <= live_bound")
        if self.heap_words < self.live_bound:
            raise ValueError(
                "heap_words below live_bound is trivially unwinnable"
            )
        if self.power_of_two_sizes:
            sizes = tuple(
                1 << e
                for e in range(self.max_object.bit_length())
                if (1 << e) <= self.max_object
            )
        else:
            sizes = tuple(range(1, self.max_object + 1))
        object.__setattr__(self, "sizes", sizes)


def _live_words(state: State) -> int:
    return sum(size for _, size in state)


def _fits(state: State, address: int, size: int, heap_words: int) -> bool:
    if address < 0 or address + size > heap_words:
        return False
    end = address + size
    for seg_address, seg_size in state:
        if address < seg_address + seg_size and seg_address < end:
            return False
    return True


def program_moves(
    config: GameConfig, state: State
) -> Iterator[tuple[str, State | int]]:
    """The program's options: ``("free", new_state)`` per live object,
    and ``("request", size)`` per admissible size."""
    for index in range(len(state)):
        successor = state[:index] + state[index + 1:]
        yield ("free", successor)
    live = _live_words(state)
    for size in config.sizes:
        if live + size <= config.live_bound:
            yield ("request", size)


def manager_placements(
    config: GameConfig, state: State, size: int
) -> list[State]:
    """Every state reachable by placing ``size`` somewhere free."""
    results = []
    for address in range(config.heap_words - size + 1):
        if _fits(state, address, size, config.heap_words):
            placed = tuple(sorted(state + ((address, size),)))
            results.append(placed)
    return results


def _explore(config: GameConfig) -> tuple[set, dict, dict]:
    """Enumerate the reachable game graph.

    Nodes: ``("P", state)`` program to move, ``("Q", state, size)``
    manager to answer.  Returns (nodes, successors, predecessors).
    """
    initial = ("P", ())
    nodes = {initial}
    successors: dict = {}
    predecessors: dict = {initial: set()}
    stack = [initial]
    while stack:
        node = stack.pop()
        outs = []
        if node[0] == "P":
            state = node[1]
            for kind, payload in program_moves(config, state):
                if kind == "free":
                    nxt = ("P", payload)
                else:
                    nxt = ("Q", state, payload)
                outs.append(nxt)
        else:
            _, state, size = node
            for placed in manager_placements(config, state, size):
                outs.append(("P", placed))
        successors[node] = outs
        for nxt in outs:
            predecessors.setdefault(nxt, set()).add(node)
            if nxt not in nodes:
                nodes.add(nxt)
                stack.append(nxt)
    return nodes, successors, predecessors


def naive_program_wins(config: GameConfig) -> bool:
    """Reference verdict: attractor over the concrete (tuple-keyed) graph.

    Attractor computation: seed with dead-end manager nodes (no legal
    placement), propagate backward — a program node joins when *some*
    successor is winning; a manager node joins when *all* successors
    are.  Kept verbatim as ground truth for the scaled solver: the
    ``solver-parity`` CI step and the hypothesis differential suite
    compare :func:`program_wins` against this on micro grids.
    """
    nodes, successors, predecessors = _explore(config)
    winning: set = set()
    # Count, per manager node, how many successors are not yet winning.
    pending_counts = {
        node: len(successors[node]) for node in nodes if node[0] == "Q"
    }
    frontier = [
        node for node in nodes if node[0] == "Q" and not successors[node]
    ]
    winning.update(frontier)
    while frontier:
        node = frontier.pop()
        for pred in predecessors.get(node, ()):
            if pred in winning:
                continue
            if pred[0] == "P":
                winning.add(pred)
                frontier.append(pred)
            else:
                pending_counts[pred] -= 1
                if pending_counts[pred] == 0:
                    winning.add(pred)
                    frontier.append(pred)
    return ("P", ()) in winning


def program_wins(config: GameConfig) -> bool:
    """Whether the program can force an unservable request in ``H`` words.

    Routed through the scaled :class:`~repro.exact.solver.GameSolver`
    (identical verdicts, orders of magnitude faster); heaps beyond the
    packed encoding's limit fall back to :func:`naive_program_wins`.
    """
    from .canonical import MAX_HEAP_WORDS
    from .solver import GameSolver

    if config.heap_words > MAX_HEAP_WORDS:
        return naive_program_wins(config)
    solver = GameSolver(
        config.live_bound, config.max_object,
        power_of_two_sizes=config.power_of_two_sizes,
    )
    return solver.program_wins(config.heap_words)


@lru_cache(maxsize=None)
def minimum_heap_words(
    live_bound: int, max_object: int, *, power_of_two_sizes: bool = True
) -> int:
    """The exact worst-case heap requirement for ``P2(M, n)`` (or the
    all-sizes family), no compaction: the least ``H`` at which the
    manager wins the safety game.

    Monotone in ``H`` (more room only helps the manager), so the least
    win exists; Robson's upper bound caps the search.  The scaled
    solver brackets it (formula-seeded gallop + bisection, sharing one
    transposition table across probes) instead of walking linearly.
    """
    from .canonical import MAX_HEAP_WORDS
    from .solver import GameSolver, solver_ceiling

    if solver_ceiling(live_bound, max_object) <= MAX_HEAP_WORDS:
        solver = GameSolver(
            live_bound, max_object, power_of_two_sizes=power_of_two_sizes
        )
        return solver.minimum_heap_words()
    # Parameters beyond the packed encoding: naive linear walk.
    heap = live_bound
    log_n = max(1, max_object).bit_length() - 1
    ceiling = live_bound * (log_n + 2) + max_object + 1
    while heap <= ceiling:
        config = GameConfig(
            live_bound, max_object, heap,
            power_of_two_sizes=power_of_two_sizes,
        )
        if not naive_program_wins(config):
            return heap
        heap += 1
    raise AssertionError(
        "exact search exceeded the analytic ceiling — solver bug"
    )


def exact_waste_factor(
    live_bound: int, max_object: int, *, power_of_two_sizes: bool = True
) -> Fraction:
    """:func:`minimum_heap_words` normalized by ``M``, exactly.

    A :class:`~fractions.Fraction` — the same exact-ratio presentation
    the analysis layer uses — so no float enters budget-critical code
    and staticcheck's float-taint pass needs no exemption.
    """
    return Fraction(
        minimum_heap_words(
            live_bound, max_object, power_of_two_sizes=power_of_two_sizes
        ),
        live_bound,
    )
