"""``python -m repro`` — see :mod:`repro.cli`."""

import sys

from .cli import main

sys.exit(main())
