"""Corollary: Theorem 1 under an *absolute* compaction budget.

Model variant (Bendersky & Petrank's second model; a natural fit for
pause-time-budgeted collectors): the manager may move at most ``B``
words in total, regardless of how much the program allocates.

**Reduction.**  Fix any execution of a program ``P`` against a
B-bounded manager ``A``, and let ``s`` be the total space ``P``
allocates.  At every point of the execution the manager has moved at
most ``B = s * (B / s)`` words, so ``A`` behaves as a ``(s/B)``-partial
manager on this execution, and Theorem 1's program :math:`P_F(c)` with
``c <= s_{P_F} / B`` forces it to ``h(c) * M``.

The adversary's total allocation is under its own control, so the
corollary instantiates ``c`` self-consistently: :math:`P_F`'s very
first step already allocates ``M`` words (Algorithm 1, line 3), hence
``c = M / B`` is always sound; the full Stage-I+II allocation is larger,
so :func:`lower_bound_absolute` searches the feasible ``c`` range for
the best sound instantiation using a *lower* bound on :math:`P_F`'s
total allocation (Stage 0's ``M`` plus the guaranteed Stage-II ration).

Because ``h`` is increasing in ``c``, shrinking ``B`` (a stingier
manager) drives the bound up toward the Robson regime, and a huge ``B``
degrades to the trivial bound — both limits are tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import BoundParams
from .theorem1 import feasible_density_exponents, waste_factor_at

__all__ = [
    "AbsoluteBoundResult",
    "pf_allocation_floor",
    "lower_bound_absolute",
]


@dataclass(frozen=True)
class AbsoluteBoundResult:
    """The corollary's outcome at one ``(M, n, B)`` point."""

    waste_factor: float
    effective_divisor: float | None
    density_exponent: int | None
    params: BoundParams
    budget_words: int

    @property
    def heap_words(self) -> float:
        """The lower bound in words."""
        return self.waste_factor * self.params.live_space

    @property
    def is_trivial(self) -> bool:
        """True when only ``HS >= M`` is claimed."""
        return self.waste_factor <= 1.0


def pf_allocation_floor(params: BoundParams, ell: int, c: float) -> float:
    """A floor on :math:`P_F(c)`'s total allocation.

    Guaranteed components only: step 0 allocates exactly ``M`` words,
    and Stage II allocates ``x * M`` per step unless the manager already
    lost (``x = (1 - 2^{-ell} h) / (ell + 1)``, ``K`` steps).  Stage-I
    steps 1..ell allocate more, but their amount depends on the
    manager's compaction, so they are left out — the floor stays sound
    for every opponent.
    """
    probe = params.with_compaction(c)
    h = waste_factor_at(probe, ell)
    x = max(0.0, (1.0 - 2.0**-ell * h) / (ell + 1.0))
    stage2_steps = probe.log_n - 2 * ell - 1
    return params.live_space * (1.0 + x * stage2_steps)


def lower_bound_absolute(
    params: BoundParams, budget_words: int
) -> AbsoluteBoundResult:
    """Best sound Theorem-1 instantiation for a B-bounded manager.

    Searches ``c`` over a fine grid, keeping only self-consistent
    instantiations (``c <= allocation_floor(c) / B``), and returns the
    largest resulting ``h``.  ``params.compaction_divisor`` is ignored —
    the absolute budget replaces it.
    """
    if budget_words < 0:
        raise ValueError("budget_words must be non-negative")
    base = params.with_compaction(None)
    if budget_words == 0:
        # No moves at all: the Robson regime.
        from . import robson

        return AbsoluteBoundResult(
            waste_factor=max(1.0, robson.lower_bound_factor(base)),
            effective_divisor=None,
            density_exponent=None,
            params=base,
            budget_words=0,
        )
    best_h = 1.0
    best_c: float | None = None
    best_ell: int | None = None
    # c = M / B is always sound; try growing c while self-consistent.
    c = max(1.5, params.live_space / budget_words)
    while c < 1e9:
        probe = base.with_compaction(c)
        for ell in feasible_density_exponents(probe):
            floor = pf_allocation_floor(params, ell, c)
            if c <= floor / budget_words + 1e-12:
                h = waste_factor_at(probe, ell)
                if h > best_h:
                    best_h, best_c, best_ell = h, c, ell
        c *= 1.01
        # Once even the largest possible allocation cannot justify c,
        # stop: allocation floor is bounded by ~M (1 + K).
        max_floor = params.live_space * (1.0 + params.log_n)
        if c > max_floor / budget_words:
            break
    return AbsoluteBoundResult(
        waste_factor=best_h,
        effective_divisor=best_c,
        density_exponent=best_ell,
        params=base,
        budget_words=budget_words,
    )
