"""Theorem 2 — the paper's improved upper bound.

For any :math:`c > \\tfrac12 \\log_2 n` there exists a ``c``-partial
memory manager serving every program in :math:`P(M, n)` within

.. math::

    HS \\le 2M \\sum_{i=0}^{\\log_2 n}
        \\max\\Bigl(a_i, \\frac{1}{4 - 2/c}\\Bigr) + 2 n \\log_2 n

where the per-size-class coefficients satisfy :math:`a_0 = 1` and

.. math::

    a_i = 1 - \\sum_{j=0}^{i-1} \\max\\Bigl(\\frac1c, 2^{j-i} a_j\\Bigr).

Interpretation: ``a_i`` is the fraction of a size-``2^i`` region the
manager must keep in reserve for class ``i`` after accounting for the
space that smaller classes can pin down; compaction (the ``1/c`` clamp)
lets the manager reclaim pinned space once a class's contribution decays
below the budget rate, which is exactly where this bound undercuts
Robson's no-compaction construction.  Sanity anchors (tested):

* as ``c -> inf`` the recursion settles at ``a_i = 1/2``, recovering the
  shape of Robson's doubled upper bound ``2M (log2(n)/2 + 1)``;
* at ``c = 20``, ``n = 1MB``, ``M = 256MB`` the bound improves on
  ``min((c+1)M, Robson)`` by about 15% — the paper's Figure-3 highlight.

The recursion can drive ``a_i`` negative for small ``c`` (lots of
compaction); a negative reserve just means the floor term
``1/(4 - 2/c)`` is what the class costs, so we clamp at zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import BoundParams

__all__ = [
    "UpperBoundResult",
    "reserve_coefficients",
    "minimum_compaction_divisor",
    "upper_bound",
    "upper_bound_words",
]


@dataclass(frozen=True)
class UpperBoundResult:
    """The evaluation of Theorem 2 at one parameter point."""

    waste_factor: float
    params: BoundParams
    coefficients: tuple[float, ...]

    @property
    def heap_words(self) -> float:
        """The guaranteed heap size in words."""
        return self.waste_factor * self.params.live_space


def minimum_compaction_divisor(params: BoundParams) -> float:
    """The smallest ``c`` Theorem 2 applies to: ``c > log2(n) / 2``."""
    return params.log_n / 2.0


def reserve_coefficients(c: float, log_n: int) -> tuple[float, ...]:
    """The ``a_0 .. a_{log n}`` sequence for budget divisor ``c``.

    ``c`` may be ``math.inf`` to model the no-compaction limit (used by
    tests to confirm the Robson shape).  Values are clamped at zero; see
    the module docstring.
    """
    if c <= 1 and not math.isinf(c):
        raise ValueError("c must exceed 1")
    if log_n < 0:
        raise ValueError("log_n must be non-negative")
    inv_c = 0.0 if math.isinf(c) else 1.0 / c
    coeffs = [1.0]
    for i in range(1, log_n + 1):
        pinned = sum(
            max(inv_c, (2.0 ** (j - i)) * coeffs[j]) for j in range(i)
        )
        coeffs.append(max(0.0, 1.0 - pinned))
    return tuple(coeffs)


def upper_bound(params: BoundParams) -> UpperBoundResult:
    """Theorem 2's guaranteed heap size as a multiple of ``M``.

    Raises :class:`ValueError` when the manager has no compaction budget
    (``c`` is ``None``) or ``c`` is below the theorem's applicability
    threshold — callers wanting a universally valid upper bound should use
    :func:`repro.core.envelope.best_upper_bound`, which falls back to
    Robson / the ``(c+1)M`` bound outside this regime.
    """
    c = params.compaction_divisor
    if c is None:
        raise ValueError(
            "Theorem 2 needs a finite compaction budget; use the Robson "
            "upper bound for non-moving managers"
        )
    if c <= minimum_compaction_divisor(params):
        raise ValueError(
            f"Theorem 2 requires c > log2(n)/2 = "
            f"{minimum_compaction_divisor(params):g}; got c = {c:g}"
        )
    coeffs = reserve_coefficients(c, params.log_n)
    floor = 1.0 / (4.0 - 2.0 / c)
    class_cost = sum(max(a, floor) for a in coeffs)
    slack_words = 2.0 * params.max_object * params.log_n
    factor = 2.0 * class_cost + slack_words / params.live_space
    return UpperBoundResult(factor, params, coeffs)


def upper_bound_words(params: BoundParams) -> float:
    """Theorem 2 as an absolute heap-size guarantee in words."""
    return upper_bound(params).heap_words
