"""Theorem 1 — the paper's main lower bound.

For every ``c``-partial memory manager ``A`` and every ``M > n > 1`` there
is a program :math:`P_F \\in P_2(M, n)` forcing

.. math::  HS(A, P_F) \\ge M \\cdot h(\\ell)

for any integral density exponent :math:`\\ell \\le \\log_2(3c/4)`, where

.. math::

    h(\\ell) = \\frac{\\frac{\\ell+2}{2}
        - \\frac{2^\\ell}{c}\\Bigl(\\ell + 1 - \\tfrac12 S(\\ell)\\Bigr)
        + \\Bigl(\\tfrac34 - \\tfrac{2^\\ell}{c}\\Bigr)\\frac{K}{\\ell+1}
        - \\frac{2n}{M}}
        {1 + 2^{-\\ell}\\Bigl(\\tfrac34 - \\tfrac{2^\\ell}{c}\\Bigr)
         \\frac{K}{\\ell+1}}

with :math:`K = \\log_2(n) - 2\\ell - 1` and
:math:`S(\\ell) = \\sum_{i=1}^{\\ell} i/(2^i-1)`.

The exponent :math:`\\ell` parameterises the adversary: the program
:math:`P_F` maintains a per-chunk density of at least :math:`2^{-\\ell}`,
which makes evacuating a chunk cost the manager more budget than the
allocation that reuses it earns back (hence the feasibility condition
:math:`2^\\ell \\le 3c/4`).  The theorem holds for *every* feasible
``ell``; :func:`lower_bound` optimizes over them.

Derivation of the ``h`` fixed point (how the OCR-damaged formula was
reconstructed; see DESIGN.md):

* Lemma 4.5 (Stage I):  ``u(t_first) >= M (ell+2)/2 - 2^ell q1 - n/4`` and
  ``s1 <= M (ell + 1 - S(ell)/2)``.
* Lemma 4.6 (Stage II): ``u(t_finish) - u(t_first) >= (3/4) s2 - 2^ell q2``
  and — unless the manager already uses ``> M h`` —
  ``s2 >= M (1 - 2^{-ell} h) K/(ell+1) - 2n``.
* Budget: ``q1 + q2 <= (s1 + s2)/c``.

Substituting gives ``HS >= M (ell+2)/2 - (2^ell/c) s1
+ (3/4 - 2^ell/c) s2 - n/4``; plugging the extremal ``s1``/``s2`` and
solving ``HS = M h`` for ``h`` yields the displayed formula (the paper
folds the ``n/4`` slack into the ``2n/M`` term).  The reconstruction
reproduces the paper's prose values exactly: ``h = 3.5`` at ``c = 100``,
``3.15`` at ``c = 50`` and ``2.0`` at ``c = 10`` for ``M = 256MB``,
``n = 1MB``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import BoundParams
from .series import stage1_series_float

__all__ = [
    "LowerBoundResult",
    "feasible_density_exponents",
    "waste_factor_at",
    "waste_factor_exact",
    "lower_bound",
    "lower_bound_words",
    "waste_profile",
]


@dataclass(frozen=True)
class LowerBoundResult:
    """The outcome of evaluating Theorem 1 at one parameter point.

    Attributes
    ----------
    waste_factor:
        ``h`` — the heap must be at least ``waste_factor * M`` words.
        Clamped below at 1.0 (a heap smaller than the live space is
        impossible, so the theorem never says less than the trivial bound).
    density_exponent:
        The ``ell`` achieving the maximum (``None`` when no ``ell`` is
        feasible and only the trivial bound applies).
    params:
        The inputs the bound was evaluated at.
    raw_factor:
        The un-clamped ``h`` value (can drop below 1 for tiny heaps where
        the ``2n/M`` slack dominates; kept for diagnostics and plots).
    """

    waste_factor: float
    density_exponent: int | None
    params: BoundParams
    raw_factor: float

    @property
    def heap_words(self) -> float:
        """The bound expressed in words: ``waste_factor * M``."""
        return self.waste_factor * self.params.live_space

    @property
    def is_trivial(self) -> bool:
        """True when Theorem 1 adds nothing over ``HS >= M``."""
        return self.waste_factor <= 1.0


def feasible_density_exponents(params: BoundParams) -> list[int]:
    """Every integral ``ell`` Theorem 1 admits for these parameters.

    Two constraints apply:

    * ``2^ell <= 3c/4`` — the chunk density ``2^-ell`` must make chunk
      evacuation a net budget loss for the manager;
    * ``log2(n) - 2*ell - 1 >= 1`` — Stage II must have at least one step
      (``K >= 1``), i.e. ``ell <= (log2(n) - 2) / 2``.

    ``ell`` starts at 1: the density threshold must be a proper fraction.
    """
    c = params.compaction_divisor
    if c is None:
        # No compaction: any density works; cap is purely the K >= 1 rule.
        budget_cap = math.inf
    else:
        budget_cap = math.floor(math.log2(3.0 * c / 4.0))
    stage2_cap = (params.log_n - 2) // 2  # ensures K = log n - 2 ell - 1 >= 1
    top = min(budget_cap, stage2_cap)
    if math.isinf(top):
        top = stage2_cap
    return [ell for ell in range(1, int(top) + 1)]


def waste_factor_at(params: BoundParams, ell: int) -> float:
    """Evaluate ``h(ell)`` without optimizing or clamping.

    Raises :class:`ValueError` when ``ell`` is infeasible, because the
    theorem genuinely does not hold there (the coefficient
    ``3/4 - 2^ell/c`` would make more allocation *help* the manager).
    """
    if ell not in feasible_density_exponents(params):
        raise ValueError(
            f"density exponent ell={ell} is infeasible for {params.describe()}"
        )
    c = params.compaction_divisor
    budget_rate = 0.0 if c is None else (2.0**ell) / c
    stage2_steps = params.log_n - 2 * ell - 1  # K
    stage2_gain = (0.75 - budget_rate) * stage2_steps / (ell + 1.0)
    stage1_gain = (ell + 2.0) / 2.0
    stage1_cost = budget_rate * (ell + 1.0 - 0.5 * stage1_series_float(ell))
    slack = 2.0 * params.max_object / params.live_space
    numerator = stage1_gain - stage1_cost + stage2_gain - slack
    denominator = 1.0 + (2.0**-ell) * stage2_gain
    return numerator / denominator


def waste_factor_exact(params: BoundParams, ell: int):
    """``h(ell)`` in exact rational arithmetic (``fractions.Fraction``).

    The float pipeline is plenty accurate for plotting, but the bound is
    a *guarantee*: the tests cross-check the float value against this
    exact evaluation so no accumulation of rounding can ever flip a
    comparison.  Requires a rational ``c`` (floats are converted via
    ``Fraction(c).limit_denominator``; pass an int for exactness).
    """
    from fractions import Fraction

    from .series import stage1_series

    if ell not in feasible_density_exponents(params):
        raise ValueError(
            f"density exponent ell={ell} is infeasible for {params.describe()}"
        )
    c = params.compaction_divisor
    budget_rate = (
        Fraction(0)
        if c is None
        else Fraction(2**ell) / Fraction(c).limit_denominator(10**9)
    )
    stage2_steps = params.log_n - 2 * ell - 1
    stage2_gain = (Fraction(3, 4) - budget_rate) * stage2_steps / (ell + 1)
    numerator = (
        Fraction(ell + 2, 2)
        - budget_rate * (ell + 1 - stage1_series(ell) / 2)
        + stage2_gain
        - Fraction(2 * params.max_object, params.live_space)
    )
    denominator = 1 + Fraction(1, 2**ell) * stage2_gain
    return numerator / denominator


def lower_bound(params: BoundParams) -> LowerBoundResult:
    """Theorem 1 optimized over the density exponent.

    Returns the largest ``h(ell)`` over all feasible ``ell`` (clamped at
    the trivial factor 1.0).  When no ``ell`` is feasible — e.g. ``n``
    too small for Stage II — only the trivial bound is reported.
    """
    best_ell: int | None = None
    best_h = -math.inf
    for ell in feasible_density_exponents(params):
        h = waste_factor_at(params, ell)
        if h > best_h:
            best_h, best_ell = h, ell
    if best_ell is None:
        return LowerBoundResult(1.0, None, params, raw_factor=1.0)
    return LowerBoundResult(
        waste_factor=max(1.0, best_h),
        density_exponent=best_ell if best_h > 1.0 else best_ell,
        params=params,
        raw_factor=best_h,
    )


def lower_bound_words(params: BoundParams) -> float:
    """Theorem 1 as an absolute heap-size bound in words."""
    return lower_bound(params).heap_words


def waste_profile(params: BoundParams) -> dict[int, float]:
    """``h(ell)`` for every feasible ``ell`` — the ablation the paper's
    §2.3 remark describes ("very few integral ell values are relevant").
    """
    return {
        ell: waste_factor_at(params, ell)
        for ell in feasible_density_exponents(params)
    }
