"""Numeric series appearing in the paper's closed-form bounds.

The lower bound of Theorem 1 contains the partial sum

.. math::  S(\\ell) = \\sum_{i=1}^{\\ell} \\frac{i}{2^i - 1}

which comes out of Claim 4.11's bound on Stage-I allocation
(``s1 <= M (ell + 1 - S(ell)/2)``).  The sum converges quickly (to about
2.7440 as ``ell`` grows), so the handful of values a caller ever needs are
cheap; we still memoise because the optimizer in :mod:`repro.core.theorem1`
evaluates the bound for every feasible ``ell``.

Everything here is exact (``fractions.Fraction``) with float convenience
wrappers, because the tests cross-check the float pipeline against exact
arithmetic.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

__all__ = [
    "stage1_series",
    "stage1_series_float",
    "stage1_series_limit",
    "geometric_tail",
    "harmonic_number",
]


@lru_cache(maxsize=None)
def stage1_series(ell: int) -> Fraction:
    """Return :math:`\\sum_{i=1}^{\\ell} i / (2^i - 1)` exactly.

    ``ell = 0`` yields the empty sum, 0.
    """
    if ell < 0:
        raise ValueError("ell must be non-negative")
    total = Fraction(0)
    for i in range(1, ell + 1):
        total += Fraction(i, 2**i - 1)
    return total


def stage1_series_float(ell: int) -> float:
    """Float value of :func:`stage1_series`."""
    return float(stage1_series(ell))


def stage1_series_limit(tolerance: float = 1e-12) -> float:
    """The limit of the Stage-I series as ``ell`` grows.

    Used only by tests and docs to show the series is bounded (so Stage-I
    allocation ``s1`` is at most about ``M (ell + 1)`` minus a constant).
    """
    total = 0.0
    i = 1
    while True:
        term = i / (2.0**i - 1.0)
        total += term
        if term < tolerance:
            return total
        i += 1


def geometric_tail(ratio: float, first_exponent: int) -> float:
    """Return :math:`\\sum_{k \\ge e} r^k` for ``0 < r < 1``.

    A helper for sanity analyses of the chunk-density argument: the total
    space tied down by density ``2^-ell`` across doubling chunk sizes is a
    geometric series.
    """
    if not 0.0 < ratio < 1.0:
        raise ValueError("ratio must be in (0, 1)")
    return ratio**first_exponent / (1.0 - ratio)


def harmonic_number(k: int) -> float:
    """Return the ``k``-th harmonic number ``H_k``.

    Appears in fragmentation folklore comparisons in the analysis docs
    (not in the paper's bound itself).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    return sum(1.0 / i for i in range(1, k + 1))
