"""Robson's classical no-compaction bounds (JACM 1971, 1974).

For programs restricted to power-of-two object sizes
(:math:`P_2(M, n)`, with ``n | M``) and memory managers that never move
objects, Robson proved matching lower and upper bounds:

.. math::

    \\min_A HS(A, P_o) \\;=\\; \\max_P HS(A_o, P)
        \\;=\\; M\\Bigl(\\tfrac12 \\log_2 n + 1\\Bigr) - n + 1 .

For programs allocating arbitrary sizes, rounding every request up to the
next power of two at most doubles each object, giving the *doubled*
upper bound :math:`2 (M (\\tfrac12 \\log_2 n + 1) - n + 1)` (serving
``2M`` of rounded live space).

These results anchor both ends of the paper:

* the lower-bound program :math:`P_R` (our
  :class:`repro.adversary.robson_program.RobsonProgram`) realises the
  lower bound and is reused verbatim as Stage I of :math:`P_F`;
* the upper bound is one leg of the Figure-3 comparison — the paper's
  Theorem 2 only matters when it beats both Robson and the
  Bendersky–Petrank ``(c+1)M`` bound.
"""

from __future__ import annotations

from .params import BoundParams

__all__ = [
    "lower_bound_factor",
    "lower_bound_words",
    "upper_bound_words",
    "general_upper_bound_words",
    "general_upper_bound_factor",
]


def lower_bound_words(params: BoundParams) -> float:
    """Heap words any non-moving manager needs against Robson's program.

    ``M (log2(n)/2 + 1) - n + 1``, for the power-of-two family
    :math:`P_2(M, n)`.
    """
    M, n = params.live_space, params.max_object
    return M * (params.log_n / 2.0 + 1.0) - n + 1


def lower_bound_factor(params: BoundParams) -> float:
    """Robson's lower bound as a multiple of ``M``."""
    return lower_bound_words(params) / params.live_space


def upper_bound_words(params: BoundParams) -> float:
    """Heap words within which Robson's allocator serves all of
    :math:`P_2(M, n)` — equal to the lower bound (the result is tight).
    """
    return lower_bound_words(params)


def general_upper_bound_words(params: BoundParams) -> float:
    """The doubled bound for arbitrary-size programs in ``P(M, n)``.

    Rounding each allocation up to a power of two at most doubles live
    space, so a power-of-two allocator with budget ``2M`` suffices:
    ``2 (M (log2(n)/2 + 1) - n + 1)``.
    """
    return 2.0 * upper_bound_words(params)


def general_upper_bound_factor(params: BoundParams) -> float:
    """:func:`general_upper_bound_words` as a multiple of ``M``."""
    return general_upper_bound_words(params) / params.live_space
