"""Closed-form bounds from Cohen & Petrank, PLDI 2013, and prior work.

The package exposes four families of results:

* :mod:`repro.core.theorem1` — the paper's main lower bound on the heap
  size any ``c``-partial memory manager needs (Theorem 1);
* :mod:`repro.core.theorem2` — the paper's improved upper bound
  (Theorem 2);
* :mod:`repro.core.robson` — Robson's tight no-compaction bounds;
* :mod:`repro.core.bendersky_petrank` — the POPL'11 bounds the paper
  improves on.

:mod:`repro.core.envelope` combines them into best-known envelopes, and
:mod:`repro.core.tables` pins the parameter presets used by the paper's
figures.
"""

from . import absolute, bendersky_petrank, robson, series, tables, theorem1, theorem2
from .absolute import AbsoluteBoundResult, lower_bound_absolute
from .envelope import BoundEnvelope, best_lower_bound, best_upper_bound, envelope
from .params import GB, KB, MB, PAPER_REALISTIC, BoundParams
from .theorem1 import LowerBoundResult, lower_bound, waste_factor_at, waste_profile
from .theorem2 import UpperBoundResult, reserve_coefficients, upper_bound

__all__ = [
    "AbsoluteBoundResult",
    "BoundParams",
    "BoundEnvelope",
    "LowerBoundResult",
    "UpperBoundResult",
    "PAPER_REALISTIC",
    "KB",
    "MB",
    "GB",
    "absolute",
    "bendersky_petrank",
    "best_lower_bound",
    "best_upper_bound",
    "envelope",
    "lower_bound",
    "lower_bound_absolute",
    "reserve_coefficients",
    "robson",
    "series",
    "tables",
    "theorem1",
    "theorem2",
    "upper_bound",
    "waste_factor_at",
    "waste_profile",
]
