"""Named parameter presets for the paper's figures and our experiments.

Keeping the presets in one place means the figure generators, the
benchmarks and EXPERIMENTS.md all agree on what "the paper's setting"
is, and on what scaled-down setting the simulations use.
"""

from __future__ import annotations

from .params import GB, KB, MB, BoundParams

__all__ = [
    "FIGURE1_PARAMS",
    "FIGURE1_C_RANGE",
    "FIGURE2_C",
    "FIGURE2_N_VALUES",
    "figure2_params",
    "FIGURE3_PARAMS",
    "FIGURE3_C_RANGE",
    "SIMULATION_SCALE",
    "simulation_params",
    "PAPER_PROSE_ANCHORS",
]

#: Figure 1: lower bound vs c at the "realistic parameters".
FIGURE1_PARAMS = BoundParams(live_space=256 * MB, max_object=1 * MB)
FIGURE1_C_RANGE = tuple(range(10, 101))

#: Figure 2: lower bound vs n at c=100, M=256n ("it is uncommon for a
#: single object to create a significant part of the heap").
FIGURE2_C = 100.0
FIGURE2_N_VALUES = tuple(
    2**exp for exp in range(10, 31)  # 1KB .. 1GB in words
)


def figure2_params(n: int, c: float = FIGURE2_C) -> BoundParams:
    """The Figure-2 point for a given largest-object size ``n``."""
    return BoundParams(live_space=256 * n, max_object=n, compaction_divisor=c)


#: Figure 3: upper bounds vs c at the same realistic parameters.
FIGURE3_PARAMS = FIGURE1_PARAMS
FIGURE3_C_RANGE = tuple(range(10, 101))

#: Default scaled-down setting for heap simulations: keeps the paper's
#: M = 256 n ratio but at M = 64Ki words, n = 256 words, so a pure-Python
#: run finishes in seconds.  (repro band: "feasible but slow for large
#: heap simulations" — this is the documented substitution.)
SIMULATION_SCALE = BoundParams(live_space=64 * KB, max_object=256)


def simulation_params(
    live_space: int = 64 * KB,
    max_object: int = 256,
    c: float | None = None,
) -> BoundParams:
    """A scaled-down parameter point for driving the heap simulator."""
    return BoundParams(live_space, max_object, c)


#: Concrete numbers the paper states in prose, used as regression anchors:
#: (c, expected waste factor h, absolute tolerance).
PAPER_PROSE_ANCHORS = (
    (10.0, 2.0, 0.1),
    (50.0, 3.15, 0.1),
    (100.0, 3.5, 0.1),
)

# Re-export the byte-ish units so figure code can annotate axes.
_ = (KB, GB)
