"""Best-known bound envelopes across all four results.

A downstream user asking "how much heap must/does partial compaction
cost at my parameters?" wants the *best* known bound, not a particular
theorem.  These helpers combine:

* lower bounds: trivial (``M``), Bendersky–Petrank '11, Cohen–Petrank
  Theorem 1;
* upper bounds: Robson's doubled bound (non-moving, hence valid for every
  ``c``), Bendersky–Petrank ``(c+1)M``, Cohen–Petrank Theorem 2 (when its
  ``c > log2(n)/2`` precondition holds).

Both envelopes are reported as waste factors (multiples of ``M``) plus an
attribution of which result is binding, which is exactly what the
Figure-1/Figure-3 series need.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import bendersky_petrank, robson, theorem1, theorem2
from .params import BoundParams

__all__ = ["BoundEnvelope", "best_lower_bound", "best_upper_bound", "envelope"]


@dataclass(frozen=True)
class BoundEnvelope:
    """The best lower and upper waste factors with attributions."""

    params: BoundParams
    lower_factor: float
    lower_source: str
    upper_factor: float
    upper_source: str

    @property
    def gap(self) -> float:
        """Multiplicative gap between the best upper and lower bounds."""
        return self.upper_factor / self.lower_factor

    def is_consistent(self) -> bool:
        """Lower bounds must never exceed upper bounds."""
        return self.lower_factor <= self.upper_factor + 1e-9


def best_lower_bound(params: BoundParams) -> tuple[float, str]:
    """The strongest known lower bound (factor, source-name)."""
    candidates: list[tuple[float, str]] = [(1.0, "trivial")]
    if params.allows_compaction:
        candidates.append(
            (bendersky_petrank.lower_bound_factor(params), "bendersky-petrank-2011")
        )
        candidates.append(
            (theorem1.lower_bound(params).waste_factor, "cohen-petrank-theorem1")
        )
    else:
        # No compaction at all: Robson's tight bound applies.
        candidates.append((robson.lower_bound_factor(params), "robson"))
    return max(candidates, key=lambda pair: pair[0])


def best_upper_bound(params: BoundParams) -> tuple[float, str]:
    """The strongest known upper bound (factor, source-name).

    Robson's doubled general-program bound always applies (a manager may
    simply never spend its budget), so the envelope is finite for every
    ``c`` including ``None``.
    """
    candidates: list[tuple[float, str]] = [
        (robson.general_upper_bound_factor(params), "robson-doubled")
    ]
    c = params.compaction_divisor
    if c is not None:
        candidates.append(
            (bendersky_petrank.upper_bound_factor(params), "bp-(c+1)M")
        )
        if c > theorem2.minimum_compaction_divisor(params):
            candidates.append(
                (theorem2.upper_bound(params).waste_factor,
                 "cohen-petrank-theorem2")
            )
    return min(candidates, key=lambda pair: pair[0])


def envelope(params: BoundParams) -> BoundEnvelope:
    """Both envelopes at once, with a consistency check.

    Raises :class:`AssertionError` if any lower bound crossed any upper
    bound — that would mean a bug in one of the calculators, and the
    property-based tests lean on exactly this check.
    """
    low, low_src = best_lower_bound(params)
    high, high_src = best_upper_bound(params)
    result = BoundEnvelope(params, low, low_src, high, high_src)
    if not result.is_consistent():
        raise AssertionError(
            f"bound inversion at {params.describe()}: "
            f"lower {low:.4f} ({low_src}) > upper {high:.4f} ({high_src})"
        )
    return result
