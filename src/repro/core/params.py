"""Parameter objects shared by every bound calculator.

The paper's bounds are functions of three quantities:

``M``
    The maximum number of words the program may have live simultaneously
    (the *live-space bound*).  The program family :math:`P(M, n)` never
    exceeds ``M`` live words.

``n``
    The size, in words, of the largest object the program may allocate.
    The smallest object is one word, so ``n`` doubles as the ratio between
    the largest and smallest allowable object.

``c``
    The compaction-budget divisor.  A *c-partial* memory manager may move
    at most ``s / c`` words after the program has allocated ``s`` words in
    total (Bendersky & Petrank's model, adopted by the paper).

All bounds in :mod:`repro.core` take a :class:`BoundParams` (or the raw
triple) and return plain floats measured in *words*, or waste factors
measured in units of ``M``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "BoundParams",
    "KB",
    "MB",
    "GB",
    "PAPER_REALISTIC",
    "is_power_of_two",
    "log2_exact",
]

#: One kilobyte expressed in words (the paper's plots label axes in bytes
#: but the model is word-granular; we keep the paper's 1-word = 1-unit
#: convention so "256MB" means :data:`MB` * 256 words).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive integral power of two."""
    return value >= 1 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for a power of two, raising otherwise.

    The paper's adversary :math:`P_F` only works with power-of-two object
    sizes, so several call sites need the exact integer logarithm rather
    than a float that might be off by an ulp.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value!r} is not a positive power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class BoundParams:
    """A validated ``(M, n, c)`` triple.

    Parameters
    ----------
    live_space:
        ``M`` — the simultaneous live-space bound, in words.
    max_object:
        ``n`` — the largest allocatable object, in words.  Must be a power
        of two for the power-of-two program families the paper analyses.
    compaction_divisor:
        ``c`` — the compaction budget is ``1/c`` of allocated space.
        ``None`` (or ``math.inf``) means *no compaction allowed*, the
        Robson regime.
    """

    live_space: int
    max_object: int
    compaction_divisor: float | None = None

    def __post_init__(self) -> None:
        if self.live_space <= 0:
            raise ValueError("live_space (M) must be positive")
        if self.max_object <= 0:
            raise ValueError("max_object (n) must be positive")
        if not is_power_of_two(self.max_object):
            raise ValueError(
                "max_object (n) must be a power of two; got "
                f"{self.max_object}"
            )
        if self.max_object > self.live_space:
            raise ValueError(
                "max_object (n) may not exceed live_space (M): a single "
                "object must fit in the live-space bound"
            )
        if self.compaction_divisor is not None:
            if math.isinf(self.compaction_divisor):
                object.__setattr__(self, "compaction_divisor", None)
            elif self.compaction_divisor <= 1:
                raise ValueError(
                    "compaction_divisor (c) must exceed 1; c <= 1 would let "
                    "the manager move everything, making compaction free"
                )

    # Short aliases matching the paper's notation -------------------------

    @property
    def M(self) -> int:  # noqa: N802 - paper notation
        """Alias for :attr:`live_space` matching the paper's ``M``."""
        return self.live_space

    @property
    def n(self) -> int:
        """Alias for :attr:`max_object` matching the paper's ``n``."""
        return self.max_object

    @property
    def c(self) -> float | None:
        """Alias for :attr:`compaction_divisor` matching the paper's ``c``."""
        return self.compaction_divisor

    @property
    def log_n(self) -> int:
        """``log2(n)`` as an exact integer."""
        return log2_exact(self.max_object)

    @property
    def allows_compaction(self) -> bool:
        """Whether the manager has any compaction budget at all."""
        return self.compaction_divisor is not None

    def with_compaction(self, c: float | None) -> "BoundParams":
        """Return a copy with a different compaction divisor."""
        return BoundParams(self.live_space, self.max_object, c)

    def scaled(self, factor: int) -> "BoundParams":
        """Return a copy with both ``M`` and ``n`` multiplied by ``factor``.

        Used by the experiment harness to move between paper scale and
        simulation scale while preserving the ``M/n`` ratio.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if not is_power_of_two(factor):
            raise ValueError("factor must be a power of two to keep n one")
        return BoundParams(
            self.live_space * factor, self.max_object * factor,
            self.compaction_divisor,
        )

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``M=256MB, n=1MB, c=100``."""
        c = "inf" if self.compaction_divisor is None else f"{self.compaction_divisor:g}"
        return (
            f"M={_format_words(self.live_space)}, "
            f"n={_format_words(self.max_object)}, c={c}"
        )


def _format_words(words: int) -> str:
    """Format a word count with a binary-unit suffix when it is round."""
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if words % unit == 0:
            return f"{words // unit}{name}"
    return f"{words}w"


#: The paper's "realistic parameters" used for Figures 1 and 3:
#: a live space of 256MB and a largest object of 1MB.
PAPER_REALISTIC = BoundParams(live_space=256 * MB, max_object=1 * MB)
