"""Bendersky & Petrank's POPL 2011 partial-compaction bounds.

The prior state of the art the paper improves on.  Two results matter:

**Upper bound.**  A simple compacting collector :math:`A_c` serves every
program in :math:`P(M, n)` within heap :math:`(c + 1) M`: it keeps a
bump-allocated region of size ``M`` plus ``c`` survivor regions, paying
one ``1/c`` budget instalment per region evacuation.

**Lower bound.**  A bad program :math:`P_W` forces

.. math::

    HS \\ge \\begin{cases}
        M \\min\\bigl(c, \\frac{\\log_2 n}{10 \\log_2(c+1)}\\bigr) - 5n
            & c \\le 4 \\log_2 n \\\\[4pt]
        \\frac{M}{6} \\cdot \\frac{\\log_2 n}{\\log_2\\log_2 n + 2}
            - \\frac{n}{2}
            & c > 4 \\log_2 n .
    \\end{cases}

The headline of the PLDI'13 paper is that this lower bound is vacuous at
practical scale: for ``M = 256MB``, ``n = 1MB`` it stays below the trivial
``HS >= M`` across the whole ``c in [10, 100]`` range of Figure 1
(it only exceeds ``M`` once ``M > n = 16TB``).  We reproduce the bound so
the Figure-1 series can show exactly that.
"""

from __future__ import annotations

import math

from .params import BoundParams

__all__ = [
    "upper_bound_factor",
    "upper_bound_words",
    "lower_bound_words",
    "lower_bound_factor",
    "regime",
]


def upper_bound_factor(params: BoundParams) -> float:
    """The ``(c + 1)`` waste factor of the BP'11 collector ``A_c``."""
    c = params.compaction_divisor
    if c is None:
        raise ValueError("the (c+1)M bound needs a finite c")
    return c + 1.0


def upper_bound_words(params: BoundParams) -> float:
    """``(c + 1) M`` in words."""
    return upper_bound_factor(params) * params.live_space


def regime(params: BoundParams) -> str:
    """Which branch of the BP'11 lower bound applies: ``"low-c"`` when
    ``c <= 4 log2 n``, else ``"high-c"``.
    """
    c = params.compaction_divisor
    if c is None:
        raise ValueError("the BP'11 lower bound needs a finite c")
    return "low-c" if c <= 4 * params.log_n else "high-c"


def lower_bound_words(params: BoundParams) -> float:
    """The BP'11 lower bound in words (may be far below ``M``)."""
    c = params.compaction_divisor
    if c is None:
        raise ValueError("the BP'11 lower bound needs a finite c")
    M, n, log_n = params.live_space, params.max_object, params.log_n
    if regime(params) == "low-c":
        return M * min(c, log_n / (10.0 * math.log2(c + 1.0))) - 5.0 * n
    return (M / 6.0) * log_n / (math.log2(log_n) + 2.0) - n / 2.0


def lower_bound_factor(params: BoundParams) -> float:
    """The BP'11 lower bound as a multiple of ``M``, clamped at the
    trivial factor 1 — matching how Figure 1 plots it ("nothing but the
    trivial lower bound" at practical scale).
    """
    return max(1.0, lower_bound_words(params) / params.live_space)
