"""Defragmentation planning: the cheapest window to evacuate.

Given a heap and a desired contiguous run of ``size`` words, which
window of the address space costs the fewest moved words to clear?
:func:`cheapest_window` answers in ``O(k log k)`` over the ``k``
occupied intervals: the evacuation cost ``cost(start) = live words in
[start, start + size)`` is piecewise linear in ``start`` with slope
changes only at interval endpoints, so candidate minima lie at
``start = 0``, at each interval's end, and at each
``interval.start - size`` (the window positions where a live run enters
or leaves the window).

This is both an analysis utility (how entrenched is the fragmentation?)
and the planning core of
:class:`~repro.mm.compacting.CheapestWindowCompactor`, which evacuates
the optimal window instead of sliding blindly.
"""

from __future__ import annotations

from ..heap.heap import SimHeap

__all__ = ["cheapest_window", "cheapest_interior_window", "evacuation_cost"]


def evacuation_cost(heap: SimHeap, start: int, size: int) -> int:
    """Live words inside ``[start, start + size)``."""
    if start < 0 or size <= 0:
        raise ValueError("need start >= 0 and size > 0")
    if heap.kernel is not None:
        from ..mm.fastpath import range_live_words

        return range_live_words(heap, start, start + size)
    return heap.occupied.overlap_words(start, start + size)


def cheapest_window(
    heap: SimHeap, size: int, *, alignment: int = 1
) -> tuple[int, int]:
    """``(start, cost)`` of the cheapest ``size``-word window.

    Windows are considered across ``[0, span_end)`` plus the tail (a
    window starting at the covered span's end always costs 0, so the
    returned cost is never worse than "just grow").  ``alignment``
    restricts the start address (candidates are rounded both ways and
    validated).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if alignment < 1:
        raise ValueError("alignment must be at least 1")
    span_end = heap.occupied.span_end
    candidates = {0, max(0, span_end)}
    for seg_start, seg_end in heap.occupied:
        candidates.add(seg_end)
        if seg_start >= size:
            candidates.add(seg_start - size)
    aligned: set[int] = set()
    for raw in candidates:
        down = raw - (raw % alignment)
        up = raw + ((-raw) % alignment)
        if down >= 0:
            aligned.add(down)
        aligned.add(up)
    best_cost, best_start = min(
        (evacuation_cost(heap, candidate, size), candidate)
        for candidate in aligned
    )
    return best_start, best_cost


def cheapest_interior_window(
    heap: SimHeap, size: int, *, alignment: int = 1
) -> tuple[int, int] | None:
    """Like :func:`cheapest_window`, but only windows entirely below the
    covered span (``start + size <= span_end``) — the windows whose
    evacuation *saves heap growth* rather than just using the tail.
    Returns ``None`` when the span is shorter than ``size``.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if alignment < 1:
        raise ValueError("alignment must be at least 1")
    if heap.kernel is not None and alignment == 1:
        from ..mm.fastpath import cheapest_interior_window as fast_window

        return fast_window(heap, size)
    span_end = heap.occupied.span_end
    limit = span_end - size
    if limit < 0:
        return None
    candidates = {0, limit - (limit % alignment)}
    for seg_start, seg_end in heap.occupied:
        if seg_end <= limit:
            candidates.add(seg_end)
        if size <= seg_start <= span_end:
            candidates.add(seg_start - size)
    aligned: set[int] = set()
    for raw in candidates:
        down = raw - (raw % alignment)
        up = raw + ((-raw) % alignment)
        if 0 <= down <= limit:
            aligned.add(down)
        if up <= limit:
            aligned.add(up)
    if not aligned:
        return None
    best_cost, best_start = min(
        (evacuation_cost(heap, candidate, size), candidate)
        for candidate in aligned
    )
    return best_start, best_cost
