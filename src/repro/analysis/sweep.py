"""Parameter sweeps with CSV export.

The figure generators cover the paper's exact plots; this module is the
general tool: sweep waste factors (theory and/or simulation) over a
``c`` grid or a manager family and emit rows ready for any plotting
stack.  Used by ``examples/export_figures.py`` and handy for downstream
users exploring their own parameter corners.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Sequence, Union

from ..core import bendersky_petrank, robson, theorem1, theorem2
from ..core.params import BoundParams
from .report import to_csv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel.engine import ParallelEngine

__all__ = ["SweepRow", "theory_sweep", "simulation_sweep", "sweep_to_csv"]


@dataclass(frozen=True)
class SweepRow:
    """One sweep point: every bound (and optional measurement) at one c."""

    c: float
    theorem1_lower: float
    bp_lower: float
    theorem2_upper: float | None
    bp_upper: float
    robson_upper: float
    measured: dict[str, float]

    def as_flat(self, manager_order: Sequence[str]) -> tuple:
        """A CSV-ready tuple (managers in the given order)."""
        return (
            self.c,
            self.theorem1_lower,
            self.bp_lower,
            "" if self.theorem2_upper is None else self.theorem2_upper,
            self.bp_upper,
            self.robson_upper,
            *(self.measured.get(name, "") for name in manager_order),
        )


def theory_sweep(
    base: BoundParams, c_values: Sequence[float]
) -> list[SweepRow]:
    """Every closed-form bound across a ``c`` grid (no simulation)."""
    rows = []
    for c in c_values:
        params = base.with_compaction(float(c))
        t2: float | None
        if c > theorem2.minimum_compaction_divisor(params):
            t2 = theorem2.upper_bound(params).waste_factor
        else:
            t2 = None
        rows.append(
            SweepRow(
                c=float(c),
                theorem1_lower=theorem1.lower_bound(params).waste_factor,
                bp_lower=bendersky_petrank.lower_bound_factor(params),
                theorem2_upper=t2,
                bp_upper=bendersky_petrank.upper_bound_factor(params),
                robson_upper=robson.general_upper_bound_factor(params),
                measured={},
            )
        )
    return rows


def simulation_sweep(
    base: BoundParams,
    c_values: Sequence[float],
    manager_names: Sequence[str],
    *,
    jobs: int = 1,
    cache_dir: Union[str, Path, None] = None,
    engine: "ParallelEngine | None" = None,
    kernel: str | None = None,
) -> list[SweepRow]:
    """Theory plus measured P_F waste per manager at each ``c``.

    The measured leg runs through the
    :class:`~repro.parallel.engine.ParallelEngine`: ``jobs`` worker
    processes fan the (c, manager) grid out, ``cache_dir`` recalls
    already-computed points from disk.  The defaults (``jobs=1``, no
    cache) execute in-process and produce exactly the historical serial
    results.  Pass a pre-built ``engine`` to share one cache/stats
    object across calls (``jobs``/``cache_dir`` are then ignored).
    """
    from ..parallel import ParallelEngine, SimTask  # local: keep import light

    theory_rows = theory_sweep(base, c_values)
    if engine is None:
        engine = ParallelEngine(jobs=jobs, cache_dir=cache_dir)
    tasks = [
        SimTask.build(base.with_compaction(row.c), name, "pf", kernel=kernel)
        for row in theory_rows
        for name in manager_names
    ]
    results = iter(engine.run(tasks))
    rows = []
    for row in theory_rows:
        measured = {name: next(results).waste_factor
                    for name in manager_names}
        rows.append(replace(row, measured=measured))
    return rows


def sweep_to_csv(
    rows: Sequence[SweepRow], manager_names: Sequence[str] = ()
) -> str:
    """Render sweep rows as CSV text."""
    header = (
        "c", "theorem1_lower", "bp2011_lower", "theorem2_upper",
        "bp2011_upper", "robson_doubled_upper",
        *(f"measured_{name}" for name in manager_names),
    )
    return to_csv(header, [row.as_flat(manager_names) for row in rows])
