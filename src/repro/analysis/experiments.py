"""Simulation experiments: running the constructions against managers.

These are the empirical legs of the reproduction.  A lower bound can
only be *witnessed* (the adversary must beat every manager we field), an
upper bound can only be *stress-tested* (the construction must survive
every program we field) — both are grids of
:func:`repro.adversary.driver.run_execution` calls with the results
compared against the closed-form bounds.

Everything runs at the scaled-down parameters of
:mod:`repro.core.tables` by default (pure-Python heaps at the paper's
256MB scale are infeasible; the substitution is documented in DESIGN.md
and the scale is part of every result row).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

from ..adversary.base import AdversaryProgram
from ..adversary.driver import ExecutionResult, run_execution
from ..adversary.pf_program import PFProgram
from ..adversary.robson_program import RobsonProgram
from ..adversary.workloads import (
    PhasedWorkload,
    RandomChurnWorkload,
    SawtoothWorkload,
)
from ..core import robson as robson_bounds
from ..core.params import BoundParams
from ..mm.registry import create_manager, manager_names

__all__ = [
    "ExperimentRow",
    "robson_experiment",
    "pf_experiment",
    "upper_bound_experiment",
    "DEFAULT_ROBSON_MANAGERS",
    "DEFAULT_PF_MANAGERS",
    "DEFAULT_UPPER_BOUND_PROGRAMS",
]

#: Non-moving managers the Robson experiment sweeps.
DEFAULT_ROBSON_MANAGERS = (
    "first-fit",
    "best-fit",
    "next-fit",
    "worst-fit",
    "segregated-fit",
    "buddy",
    "robson",
)

#: Managers (non-moving and compacting) the P_F experiment sweeps.
DEFAULT_PF_MANAGERS = (
    "first-fit",
    "best-fit",
    "segregated-fit",
    "sliding-compactor",
    "window-compactor",
    "bp-collector",
    "theorem2",
    "mark-compact",
    "semispace",
)


def _engine_rows(
    params: BoundParams,
    grid: "list[tuple[str, str, dict]]",
    jobs: int,
    cache_dir: Union[str, Path, None],
    tracer=None,
    kernel: str | None = None,
) -> list[ExecutionResult]:
    """Run a (program, manager) grid through the parallel engine.

    ``grid`` rows are ``(program_key, manager_name, program_options)``.
    Used by the experiment entry points whenever no per-row sinks
    (telemetry recording, sanitizer) are requested — those still take
    the serial in-process path below.  ``tracer`` (an enabled
    :class:`~repro.obs.trace.Tracer`) records per-task spans across
    worker lanes.
    """
    from ..parallel import ParallelEngine, SimTask  # local: keep import light

    engine = ParallelEngine(jobs=jobs, cache_dir=cache_dir, tracer=tracer)
    tasks = [
        SimTask.build(params, manager, program, kernel=kernel, **options)
        for program, manager, options in grid
    ]
    return [result.to_execution_result() for result in engine.run(tasks)]


def _run_row(
    params: BoundParams,
    program: AdversaryProgram,
    manager_name: str,
    telemetry_dir: Union[str, Path, None],
    sanitize: bool = False,
    tracer=None,
    kernel: str | None = None,
) -> ExecutionResult:
    """One grid cell: plain execution, or a recorded one when requested.

    With ``telemetry_dir`` set, the row runs fully instrumented and its
    manifest/JSONL pair lands in ``<dir>/<program>__<manager>/`` —
    renderable individually with ``repro report``.  With ``sanitize``
    set, the full :mod:`repro.check` checker set rides the run and an
    :class:`~repro.check.InvariantViolationError` aborts the grid on the
    first row that breaks a paper invariant.
    """
    manager = create_manager(manager_name, params)
    sanitizer = None
    if sanitize:
        from ..check import CheckContext, Sanitizer  # local: avoid cycle

        sanitizer = Sanitizer(CheckContext.from_params(
            params, program=program.name, manager=manager_name,
        ))
        sanitizer.attach_program(program)
    if telemetry_dir is None:
        if sanitizer is None:
            return run_execution(params, program, manager, tracer=tracer,
                                 kernel=kernel)
        from ..obs.events import EventBus

        bus = EventBus()
        sanitizer.attach(bus)
        if hasattr(program, "bus"):
            program.bus = bus
        result = run_execution(params, program, manager, observer=bus,
                               tracer=tracer, kernel=kernel)
        sanitizer.finish()
        return result
    from ..obs.telemetry import run_recorded  # local: avoid import cycle

    row_dir = Path(telemetry_dir) / f"{program.name}__{manager_name}"
    result = run_recorded(
        params, program, manager, row_dir,
        extra_sinks=None if sanitizer is None else [sanitizer],
        tracer=tracer,
        kernel=kernel,
    )
    if sanitizer is not None:
        sanitizer.finish()
    return result


def discretization_allowance(params: BoundParams, density_exponent: int) -> float:
    """Waste-factor slack between the closed-form ``h`` and a finite run.

    Theorem 1's ``h`` drops floor functions that are negligible at paper
    scale but visible at simulation scale:

    * Stage II allocates ``floor(x M / 2^(i+2))`` objects per step,
      losing up to ``2^(i+2)`` words each — at most ``2n`` words over
      the whole stage (geometric sum up to ``i = log2(n) - 2``);
    * the potential's last-chunk correction is ``n/4`` words;
    * Stage I's per-step flooring loses at most ``2^(ell+1)`` words.

    Dividing by ``M`` gives the waste-factor allowance.  At the paper's
    parameters (``n/M = 2^-8``) this is under 0.9%; at ``M = 64 n`` it
    is ~3.6%, which is why the simulation harness compares against
    ``h - allowance`` rather than raw ``h``.
    """
    M, n = params.live_space, params.max_object
    return (2.0 * n + n / 4.0 + 2.0 ** (density_exponent + 1)) / M


@dataclass(frozen=True)
class ExperimentRow:
    """One (program, manager) execution with its theoretical reference."""

    result: ExecutionResult
    bound_factor: float
    bound_name: str
    #: Waste-factor slack granted for finite-scale flooring effects
    #: (zero for upper-bound rows; see :func:`discretization_allowance`).
    allowance: float = 0.0

    @property
    def measured_factor(self) -> float:
        """The execution's ``HS / M``."""
        return self.result.waste_factor

    @property
    def effective_floor(self) -> float:
        """The lower bound after discretization allowance (never < 1)."""
        return max(1.0, self.bound_factor - self.allowance)

    @property
    def respects_lower_bound(self) -> bool:
        """Measured waste must reach the (allowance-adjusted) floor."""
        return self.measured_factor >= self.effective_floor - 1e-9

    @property
    def respects_upper_bound(self) -> bool:
        """Measured waste must be at most the guaranteed bound."""
        return self.measured_factor <= self.bound_factor + 1e-9


def robson_experiment(
    params: BoundParams,
    manager_names_to_run: tuple[str, ...] = DEFAULT_ROBSON_MANAGERS,
    *,
    telemetry_dir: Union[str, Path, None] = None,
    sanitize: bool = False,
    jobs: int = 1,
    cache_dir: Union[str, Path, None] = None,
    tracer=None,
    kernel: str | None = None,
) -> list[ExperimentRow]:
    """Robson's :math:`P_R` against the non-moving manager family.

    The reference bound is Robson's lower bound factor — every row's
    measured waste must be at or above it.  ``telemetry_dir`` records
    each row as a manifest/JSONL run under a per-row subdirectory;
    ``sanitize`` runs the :mod:`repro.check` checkers alongside.
    ``jobs``/``cache_dir`` fan the grid over the parallel engine —
    available only on the plain path (telemetry and sanitizer runs need
    in-process sinks and stay serial).
    """
    bound = robson_bounds.lower_bound_factor(params)
    if telemetry_dir is None and not sanitize:
        grid = [("robson", name, {}) for name in manager_names_to_run]
        return [
            ExperimentRow(result, bound, "robson-lower")
            for result in _engine_rows(params, grid, jobs, cache_dir, tracer,
                                       kernel)
        ]
    rows = []
    for name in manager_names_to_run:
        program = RobsonProgram(params)
        result = _run_row(params, program, name, telemetry_dir, sanitize,
                          tracer, kernel)
        rows.append(ExperimentRow(result, bound, "robson-lower"))
    return rows


def pf_experiment(
    params: BoundParams,
    manager_names_to_run: tuple[str, ...] = DEFAULT_PF_MANAGERS,
    *,
    density_exponent: int | None = None,
    telemetry_dir: Union[str, Path, None] = None,
    sanitize: bool = False,
    jobs: int = 1,
    cache_dir: Union[str, Path, None] = None,
    tracer=None,
    kernel: str | None = None,
) -> list[ExperimentRow]:
    """The paper's :math:`P_F` against a manager family.

    The reference is the Theorem-1 factor ``h`` at the adversary's
    density exponent — the theorem says *no* c-partial manager can stay
    below it.  ``telemetry_dir`` records each row as a manifest/JSONL
    run under a per-row subdirectory; ``sanitize`` runs the
    :mod:`repro.check` checkers alongside.  ``jobs``/``cache_dir``
    route the grid through the parallel engine on the plain path
    (instrumented runs stay serial).
    """
    if params.compaction_divisor is None:
        raise ValueError("pf_experiment needs a finite c in params")
    # One reference instance supplies the bound/allowance (they depend
    # only on params + density_exponent, not on execution state).
    reference = PFProgram(params, density_exponent=density_exponent)
    bound = max(1.0, reference.waste_target)
    allowance = discretization_allowance(params, reference.density_exponent)
    if telemetry_dir is None and not sanitize:
        options = ({} if density_exponent is None
                   else {"density_exponent": density_exponent})
        grid = [("pf", name, options) for name in manager_names_to_run]
        return [
            ExperimentRow(result, bound, "theorem1-h", allowance=allowance)
            for result in _engine_rows(params, grid, jobs, cache_dir, tracer,
                                       kernel)
        ]
    rows = []
    for name in manager_names_to_run:
        program = PFProgram(params, density_exponent=density_exponent)
        result = _run_row(params, program, name, telemetry_dir, sanitize,
                          tracer, kernel)
        rows.append(
            ExperimentRow(result, bound, "theorem1-h", allowance=allowance)
        )
    return rows


#: Program catalog keys the upper-bound experiment runs by default.
DEFAULT_UPPER_BOUND_PROGRAMS = (
    "pf", "robson", "churn", "sawtooth", "phased",
)


def upper_bound_experiment(
    params: BoundParams,
    *,
    programs: tuple[AdversaryProgram, ...] | None = None,
    telemetry_dir: Union[str, Path, None] = None,
    sanitize: bool = False,
    jobs: int = 1,
    cache_dir: Union[str, Path, None] = None,
    tracer=None,
    kernel: str | None = None,
) -> list[ExperimentRow]:
    """The BP collector against adversarial and benign programs.

    The reference is its ``(c+1)`` guarantee; every row must stay below
    it.  (Theorem 2's own manager is exercised in the same sweep via
    :data:`DEFAULT_PF_MANAGERS`; its *guarantee* is checked separately in
    the benchmarks because its bound formula needs the coefficients.)
    With the default program set, ``jobs``/``cache_dir`` route through
    the parallel engine; custom ``programs`` instances are not
    picklable-by-spec and run serially.
    """
    c = params.compaction_divisor
    if c is None:
        raise ValueError("upper_bound_experiment needs a finite c")
    if programs is None and telemetry_dir is None and not sanitize:
        grid = [(key, "bp-collector", {})
                for key in DEFAULT_UPPER_BOUND_PROGRAMS]
        return [
            ExperimentRow(result, c + 1.0, "bp-(c+1)M")
            for result in _engine_rows(params, grid, jobs, cache_dir, tracer,
                                       kernel)
        ]
    if programs is None:
        programs = (
            PFProgram(params),
            RobsonProgram(params),
            RandomChurnWorkload(params),
            SawtoothWorkload(params),
            PhasedWorkload(params),
        )
    rows = []
    for program in programs:
        result = _run_row(params, program, "bp-collector", telemetry_dir,
                          sanitize, tracer, kernel)
        rows.append(ExperimentRow(result, c + 1.0, "bp-(c+1)M"))
    return rows


def best_manager_against_pf(
    params: BoundParams,
    manager_names_to_run: tuple[str, ...] = DEFAULT_PF_MANAGERS,
) -> tuple[str, float]:
    """The family's best (lowest) measured waste against :math:`P_F`.

    This is the number the lower bound constrains: even the best manager
    we could field must sit above ``h``.
    """
    rows = pf_experiment(params, manager_names_to_run)
    best = min(rows, key=lambda row: row.measured_factor)
    return best.result.manager_name, best.measured_factor


def all_manager_names() -> list[str]:
    """Convenience re-export for harness code."""
    return manager_names()
