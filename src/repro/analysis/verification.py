"""One-call verification: re-check every reproduction claim.

``python -m repro verify`` (or :func:`verify_reproduction`) runs the
whole chain of evidence in one pass and reports PASS/FAIL per check:

1. prose anchors — the formulas reproduce the numbers the paper states;
2. envelope consistency — no lower bound crosses an upper bound on a
   parameter sample;
3. Robson witnessed — P_R forces every non-moving manager to the bound;
4. Theorem 1 witnessed — P_F forces the whole manager family to the
   (allowance-adjusted) floor;
5. upper bounds survive — the BP collector holds (c+1)M under attack;
6. lemma ledger — Lemmas 4.5/4.6 + Claim 4.11 + the budget identity
   hold on live executions;
7. exact anchor — the game solver equals Robson's formula at a micro
   point.

``fast=True`` shrinks the simulation scale so the sweep finishes in a
few seconds; the default uses the standard simulation parameters.
This is the command to run after touching *anything*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..adversary.driver import ExecutionDriver
from ..adversary.pf_program import PFProgram
from ..adversary.stats import LemmaLedger
from ..core import robson
from ..core.envelope import envelope
from ..core.params import MB, BoundParams
from ..core.theorem1 import lower_bound
from ..mm.registry import create_manager
from .experiments import (
    DEFAULT_PF_MANAGERS,
    DEFAULT_ROBSON_MANAGERS,
    pf_experiment,
    robson_experiment,
    upper_bound_experiment,
)

__all__ = ["CheckResult", "verify_reproduction"]


@dataclass(frozen=True)
class CheckResult:
    """One verification check's outcome."""

    name: str
    passed: bool
    detail: str


def _check(name: str, fn: Callable[[], str]) -> CheckResult:
    try:
        return CheckResult(name, True, fn())
    except AssertionError as failure:
        return CheckResult(name, False, str(failure))


def verify_reproduction(*, fast: bool = False) -> list[CheckResult]:
    """Run every check; returns one result per check (never raises)."""
    sim = BoundParams(2048 if fast else 8192, 64 if fast else 128, 50.0)
    sim_no_c = BoundParams(1024 if fast else 4096, 32 if fast else 64)
    results = []

    def prose_anchors() -> str:
        for c, expected in ((10, 2.0), (50, 3.15), (100, 3.5)):
            got = lower_bound(BoundParams(256 * MB, 1 * MB, c)).waste_factor
            assert abs(got - expected) < 0.1, f"h(c={c}) = {got}"
        return "h(10/50/100) = 2.0 / 3.15 / 3.5 reproduced"

    results.append(_check("prose anchors", prose_anchors))

    def envelopes() -> str:
        points = 0
        for m_exp in (16, 22, 28):
            for n_exp in (8, 14, 20):
                for c in (None, 5.0, 50.0, 500.0):
                    if n_exp >= m_exp:
                        continue
                    envelope(BoundParams(1 << m_exp, 1 << n_exp, c))
                    points += 1
        return f"no bound inversion across {points} parameter points"

    results.append(_check("envelope consistency", envelopes))

    def robson_witnessed() -> str:
        rows = robson_experiment(sim_no_c, DEFAULT_ROBSON_MANAGERS)
        for row in rows:
            assert row.respects_lower_bound, row.result.summary()
        bound = robson.lower_bound_factor(sim_no_c)
        best = min(row.measured_factor for row in rows)
        return (f"{len(rows)} managers >= {bound:.3f}; "
                f"tightest at {best:.3f}")

    results.append(_check("Robson bound witnessed", robson_witnessed))

    def theorem1_witnessed() -> str:
        rows = pf_experiment(sim, DEFAULT_PF_MANAGERS)
        for row in rows:
            assert row.respects_lower_bound, row.result.summary()
        floor = rows[0].effective_floor
        best = min(row.measured_factor for row in rows)
        return f"{len(rows)} managers >= floor {floor:.3f}; best {best:.3f}"

    results.append(_check("Theorem 1 witnessed", theorem1_witnessed))

    def upper_bounds_survive() -> str:
        rows = upper_bound_experiment(sim)
        for row in rows:
            assert row.respects_upper_bound, row.result.summary()
        worst = max(row.measured_factor for row in rows)
        return (f"{len(rows)} programs <= (c+1) = "
                f"{sim.compaction_divisor + 1:.0f}; worst {worst:.2f}")

    results.append(_check("upper bounds survive attack", upper_bounds_survive))

    def lemma_ledger() -> str:
        checked = []
        for name in ("first-fit", "sliding-compactor", "theorem2"):
            driver = ExecutionDriver(sim, create_manager(name, sim))
            program = PFProgram(sim)
            program.observer = LemmaLedger(driver)
            driver.run(program)
            report = program.observer.report
            assert report is not None and report.all_hold(), (
                f"{name}:\n{report.describe() if report else 'no report'}"
            )
            checked.append(name)
        return f"Lemmas 4.5/4.6 + Claim 4.11 hold vs {', '.join(checked)}"

    results.append(_check("lemma ledger", lemma_ledger))

    def exact_anchor() -> str:
        from ..exact import minimum_heap_words

        point = (4, 2) if fast else (6, 2)
        exact = minimum_heap_words(*point)
        formula = robson.lower_bound_words(BoundParams(*point))
        assert exact == int(formula), f"game {exact} != formula {formula}"
        return f"game value at M={point[0]}, n={point[1]} equals Robson: {exact}"

    results.append(_check("exact game anchor", exact_anchor))

    return results
