"""Figure regeneration, simulation experiments and reporting.

* :mod:`~repro.analysis.figures` — the data series behind the paper's
  Figures 1–3;
* :mod:`~repro.analysis.experiments` — grids of adversary × manager
  executions compared against the closed-form bounds;
* :mod:`~repro.analysis.ascii_plot` / :mod:`~repro.analysis.report` —
  terminal rendering.
"""

from .ascii_plot import render_figure, render_series
from .defrag import cheapest_window, evacuation_cost
from .experiments import (
    DEFAULT_PF_MANAGERS,
    DEFAULT_ROBSON_MANAGERS,
    ExperimentRow,
    best_manager_against_pf,
    discretization_allowance,
    pf_experiment,
    robson_experiment,
    upper_bound_experiment,
)
from .figures import FigureData, figure1_series, figure2_series, figure3_series
from .heapmap import density_bar, render_heap
from .report import experiment_table, figure_table, format_table, to_csv
from .sweep import SweepRow, simulation_sweep, sweep_to_csv, theory_sweep
from .timeline import InstrumentedManager, Timeline, TimelineSample
from .verification import CheckResult, verify_reproduction

__all__ = [
    "DEFAULT_PF_MANAGERS",
    "DEFAULT_ROBSON_MANAGERS",
    "ExperimentRow",
    "FigureData",
    "InstrumentedManager",
    "SweepRow",
    "Timeline",
    "TimelineSample",
    "best_manager_against_pf",
    "CheckResult",
    "cheapest_window",
    "discretization_allowance",
    "evacuation_cost",
    "experiment_table",
    "figure1_series",
    "figure2_series",
    "figure3_series",
    "density_bar",
    "figure_table",
    "format_table",
    "pf_experiment",
    "render_figure",
    "render_heap",
    "render_series",
    "robson_experiment",
    "simulation_sweep",
    "sweep_to_csv",
    "theory_sweep",
    "to_csv",
    "upper_bound_experiment",
    "verify_reproduction",
]
