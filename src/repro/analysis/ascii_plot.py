"""Terminal line plots for figure data (no plotting dependencies).

The benchmarks run in a console, so the figures are rendered as ASCII:
a character grid with one glyph per series, a y-axis of rounded ticks
and an x-axis legend.  Good enough to eyeball the curve shapes against
the paper's plots.
"""

from __future__ import annotations

import math
from typing import Sequence

from .figures import FigureData

__all__ = ["render_series", "render_figure"]

_GLYPHS = "*o+x#@%&"


def render_series(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 18,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named series over a shared x-axis as an ASCII grid."""
    if not x_values:
        return "(no data)"
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    xs = list(x_values)
    all_ys = [y for ys in series.values() for y in ys if math.isfinite(y)]
    if not all_ys:
        return "(no finite data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_ys), max(all_ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def row(y: float) -> int:
        fraction = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, int((1.0 - fraction) * (height - 1)))

    for index, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in zip(xs, ys):
            if math.isfinite(y):
                grid[row(y)][col(x)] = glyph

    lines = []
    if y_label:
        lines.append(y_label)
    for r, cells in enumerate(grid):
        if r == 0:
            tick = f"{y_hi:8.3f} |"
        elif r == height - 1:
            tick = f"{y_lo:8.3f} |"
        else:
            tick = " " * 9 + "|"
        lines.append(tick + "".join(cells))
    lines.append(" " * 9 + "+" + "-" * width)
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    padding = max(1, width - len(left) - len(right))
    lines.append(" " * 10 + left + " " * padding + right)
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def render_figure(figure: FigureData, *, width: int = 72, height: int = 18) -> str:
    """Render a :class:`~repro.analysis.figures.FigureData`."""
    return render_series(
        figure.x_values,
        {name: list(values) for name, values in figure.series.items()},
        width=width,
        height=height,
        y_label=f"{figure.name}: {figure.y_label}",
        x_label=figure.x_label,
    )
