"""ASCII heap maps: render a heap snapshot as a block diagram.

One glyph per bucket of words: ``#`` fully live, ``+``/``-`` partially
live, ``.`` free, past the high-water mark is simply not drawn.  Useful
in examples and debugging sessions — watching :math:`P_F` shatter a
first-fit heap is worth a thousand waste factors.
"""

from __future__ import annotations

from ..heap.heap import SimHeap

__all__ = ["render_heap", "density_bar"]

_GLYPHS = " .-+#"  # by live fraction of the bucket


def render_heap(
    heap: SimHeap, *, width: int = 64, rows: int | None = None
) -> str:
    """Render occupancy of ``[0, high_water)`` as glyph rows.

    Each glyph covers ``ceil(high_water / (width * rows))`` words and is
    shaded by the live fraction of its bucket.  Address labels on the
    left edge keep the map navigable.
    """
    total = heap.high_water
    if total == 0:
        return "(empty heap)"
    if rows is None:
        rows = max(1, min(16, (total + width * 8 - 1) // (width * 8)))
    buckets = width * rows
    per_bucket = -(-total // buckets)  # ceil
    lines = []
    for row in range(rows):
        row_start = row * width * per_bucket
        if row_start >= total:
            break
        glyphs = []
        for column in range(width):
            start = row_start + column * per_bucket
            if start >= total:
                break
            end = min(start + per_bucket, total)
            live = heap.occupied.overlap_words(start, end)
            fraction = live / (end - start)
            index = min(len(_GLYPHS) - 1, int(fraction * (len(_GLYPHS) - 1) + 0.999))
            if fraction == 0.0:
                index = 1  # '.' for free-but-below-high-water
            glyphs.append(_GLYPHS[index])
        lines.append(f"{row_start:>8} |{''.join(glyphs)}|")
    legend = (
        f"1 char = {per_bucket} word(s); '#' live, '.' free, "
        f"high water = {total}"
    )
    return "\n".join(lines + [legend])


def density_bar(values: list[float], *, width: int = 40) -> str:
    """A one-line bar chart for small positive series (histograms)."""
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    blocks = "▁▂▃▄▅▆▇█"
    return "".join(
        blocks[min(len(blocks) - 1, int(value / peak * (len(blocks) - 1)))]
        for value in values
    )[:width]
