"""Data series for every figure in the paper's evaluation.

Each ``figureN_series`` function returns a :class:`FigureData` holding
the x-axis and one or more named y-series, computed from the closed-form
bounds at the paper's exact parameter presets.  The benchmarks print
these as tables; :mod:`repro.analysis.ascii_plot` renders them as
terminal plots.

* **Figure 1** — Theorem-1 lower bound ``h`` vs ``c`` (10..100) at
  ``M = 256MB, n = 1MB``, against the Bendersky–Petrank '11 lower bound
  (which stays pinned at the trivial factor 1 across the whole range —
  the paper's headline comparison).
* **Figure 2** — ``h`` vs ``n`` (1KB..1GB) at ``c = 100, M = 256 n``.
* **Figure 3** — upper bounds vs ``c``: Theorem 2 against the prior
  best ``min(Robson-doubled, (c+1) M)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import bendersky_petrank, robson, tables, theorem1, theorem2
from ..core.params import BoundParams

__all__ = ["FigureData", "figure1_series", "figure2_series", "figure3_series"]


@dataclass(frozen=True)
class FigureData:
    """One figure's data: shared x-axis plus named y-series."""

    name: str
    x_label: str
    y_label: str
    x_values: tuple[float, ...]
    series: dict[str, tuple[float, ...]]

    def rows(self) -> list[tuple[float, ...]]:
        """Tabular view: one row per x with every series value."""
        columns = list(self.series.values())
        return [
            (x, *(column[index] for column in columns))
            for index, x in enumerate(self.x_values)
        ]

    def header(self) -> tuple[str, ...]:
        """Column names matching :meth:`rows`."""
        return (self.x_label, *self.series.keys())


def figure1_series(
    params: BoundParams | None = None,
    c_values: tuple[int, ...] | None = None,
) -> FigureData:
    """Lower bound ``h`` vs compaction divisor ``c`` (paper Figure 1)."""
    base = params or tables.FIGURE1_PARAMS
    cs = c_values or tables.FIGURE1_C_RANGE
    ours = []
    prior = []
    for c in cs:
        point = base.with_compaction(float(c))
        ours.append(theorem1.lower_bound(point).waste_factor)
        prior.append(bendersky_petrank.lower_bound_factor(point))
    return FigureData(
        name="figure1",
        x_label="c",
        y_label="lower bound on waste factor h",
        x_values=tuple(float(c) for c in cs),
        series={
            "cohen-petrank (Thm 1)": tuple(ours),
            "bendersky-petrank 2011": tuple(prior),
        },
    )


def figure2_series(
    n_values: tuple[int, ...] | None = None, c: float = tables.FIGURE2_C
) -> FigureData:
    """Lower bound ``h`` vs largest object ``n`` (paper Figure 2)."""
    ns = n_values or tables.FIGURE2_N_VALUES
    factors = []
    for n in ns:
        point = tables.figure2_params(n, c)
        factors.append(theorem1.lower_bound(point).waste_factor)
    return FigureData(
        name="figure2",
        x_label="n (words)",
        y_label="lower bound on waste factor h",
        x_values=tuple(float(n) for n in ns),
        series={"cohen-petrank (Thm 1)": tuple(factors)},
    )


def figure3_series(
    params: BoundParams | None = None,
    c_values: tuple[int, ...] | None = None,
) -> FigureData:
    """Upper bounds vs ``c`` (paper Figure 3).

    Points where Theorem 2's precondition ``c > log2(n)/2`` fails carry
    the prior-best value for the Theorem-2 series (the theorem is simply
    inapplicable there, as in the paper's plot).
    """
    base = params or tables.FIGURE3_PARAMS
    cs = c_values or tables.FIGURE3_C_RANGE
    new_bound = []
    prior_best = []
    robson_line = []
    bp_line = []
    for c in cs:
        point = base.with_compaction(float(c))
        rb = robson.general_upper_bound_factor(point)
        bp = bendersky_petrank.upper_bound_factor(point)
        prior = min(rb, bp)
        robson_line.append(rb)
        bp_line.append(bp)
        prior_best.append(prior)
        if c > theorem2.minimum_compaction_divisor(point):
            new_bound.append(min(prior, theorem2.upper_bound(point).waste_factor))
        else:
            new_bound.append(prior)
    return FigureData(
        name="figure3",
        x_label="c",
        y_label="upper bound on waste factor",
        x_values=tuple(float(c) for c in cs),
        series={
            "cohen-petrank (Thm 2)": tuple(new_bound),
            "prior best min(Robson, (c+1)M)": tuple(prior_best),
            "robson doubled": tuple(robson_line),
            "bp (c+1)M": tuple(bp_line),
        },
    )
