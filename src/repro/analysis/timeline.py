"""Time-series instrumentation: watch waste evolve during a run.

:class:`InstrumentedManager` wraps any manager and samples heap metrics
every ``every`` events (places/frees), producing a
:class:`Timeline` — the "waste over time" view allocator papers plot.
Because it is a plain manager wrapper, it composes with every program,
driver feature and budget model in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..heap.object_model import HeapObject
from ..mm.base import ManagerContext, MemoryManager

__all__ = ["TimelineSample", "Timeline", "InstrumentedManager"]


@dataclass(frozen=True)
class TimelineSample:
    """One sampled instant."""

    event_index: int
    high_water: int
    live_words: int
    total_moved: int

    def waste_factor(self, live_bound: int) -> float:
        """``HS / M`` at this instant."""
        return self.high_water / live_bound


class Timeline:
    """An append-only series of samples with convenience accessors."""

    def __init__(self) -> None:
        self.samples: list[TimelineSample] = []

    @classmethod
    def from_samples(cls, samples) -> "Timeline":
        """Adapt :class:`repro.obs.sampler.SamplePoint` series (or any
        objects with ``event_index``/``high_water``/``live_words`` and an
        optional move count) into a plottable timeline."""
        timeline = cls()
        for point in samples:
            timeline.append(TimelineSample(
                event_index=point.event_index,
                high_water=point.high_water,
                live_words=point.live_words,
                total_moved=getattr(point, "total_moved", 0),
            ))
        return timeline

    def __len__(self) -> int:
        return len(self.samples)

    def append(self, sample: TimelineSample) -> None:
        """Record one sample."""
        self.samples.append(sample)

    def series(self, live_bound: int) -> tuple[list[int], list[float]]:
        """(event indices, waste factors) ready for plotting."""
        xs = [sample.event_index for sample in self.samples]
        ys = [sample.waste_factor(live_bound) for sample in self.samples]
        return xs, ys

    def peak(self) -> TimelineSample:
        """The sample with the highest high-water mark."""
        if not self.samples:
            raise ValueError("empty timeline")
        return max(self.samples, key=lambda sample: sample.high_water)


class InstrumentedManager(MemoryManager):
    """Delegating wrapper that samples metrics as the run progresses."""

    def __init__(self, inner: MemoryManager, *, every: int = 64) -> None:
        super().__init__()
        if every < 1:
            raise ValueError("every must be at least 1")
        self.inner = inner
        self.every = every
        self.timeline = Timeline()
        self._events = 0
        self.name = f"{inner.name}+timeline"

    # Delegation ------------------------------------------------------------

    def attach(self, ctx: ManagerContext, observer=None) -> None:
        super().attach(ctx, observer)
        self.inner.attach(ctx, observer)

    def prepare(self, size: int) -> None:
        self.inner.prepare(size)

    def place(self, size: int) -> int:
        return self.inner.place(size)

    def on_place(self, obj: HeapObject) -> None:
        self.inner.on_place(obj)
        self._tick()

    def on_free(self, obj: HeapObject) -> None:
        self.inner.on_free(obj)
        self._tick()

    # Sampling ----------------------------------------------------------------

    def _tick(self) -> None:
        self._events += 1
        if self._events % self.every == 0:
            self.sample()

    def sample(self) -> TimelineSample:
        """Force a sample now (also called automatically)."""
        heap = self.heap
        sample = TimelineSample(
            event_index=self._events,
            high_water=heap.high_water,
            live_words=heap.live_words,
            total_moved=heap.total_moved,
        )
        self.timeline.append(sample)
        return sample
