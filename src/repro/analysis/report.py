"""Plain-text table rendering for benchmark and experiment output.

The benches promise "the same rows the paper reports"; these helpers
format figure data and experiment grids as aligned monospace tables (and
CSV when a file is wanted).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .experiments import ExperimentRow
from .figures import FigureData

__all__ = ["format_table", "figure_table", "experiment_table", "to_csv"]


def format_table(
    header: Sequence[str], rows: Iterable[Sequence[object]], *, precision: int = 4
) -> str:
    """Align a header + rows grid into a monospace table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def figure_table(figure: FigureData, *, precision: int = 4) -> str:
    """Tabulate a figure's series."""
    return format_table(figure.header(), figure.rows(), precision=precision)


def experiment_table(rows: Iterable[ExperimentRow], *, precision: int = 4) -> str:
    """Tabulate experiment rows: manager, measured vs bound, budget use."""
    header = (
        "program", "manager", "HS (words)", "HS/M", "bound", "bound name",
        "moved", "allocated",
    )
    body = [
        (
            row.result.program_name,
            row.result.manager_name,
            row.result.heap_size,
            row.measured_factor,
            row.bound_factor,
            row.bound_name,
            row.result.total_moved,
            row.result.total_allocated,
        )
        for row in rows
    ]
    return format_table(header, body, precision=precision)


def to_csv(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting needs arise in our data)."""
    lines = [",".join(str(cell) for cell in header)]
    for row in rows:
        lines.append(",".join(str(cell) for cell in row))
    return "\n".join(lines)
