"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``bounds`` — best-known lower/upper bounds at a parameter point;
* ``figure`` — regenerate a paper figure as an ASCII plot and table;
* ``simulate`` — run one adversary/workload against one manager
  (``--telemetry DIR`` records a manifest/JSONL run);
* ``experiment`` — run a (program × manager) grid against the bounds
  (``--telemetry DIR`` records every row; ``--jobs``/``--cache-dir``
  fan the grid over worker processes and a result cache);
* ``sweep`` — measured P_F waste over a ``c`` grid × manager family,
  parallel/cached, with a BENCH_JSON summary line;
* ``figures`` — export every figure's CSV plus the simulation sweep
  into a directory (the scripted form of ``figure``);
* ``check`` — static analysis of a recorded run: replay the event
  stream through the paper-invariant checkers (``--replay`` also
  re-runs the configuration and compares stream digests);
* ``report`` — render a recorded run directory (sparklines, the
  replayed waste trajectory and the stage-transition table);
* ``trace`` — render or export a recorded span trace: Chrome
  ``trace_event`` JSON (Perfetto), a self-time table, raw spans, or the
  fragmentation timeline (``--timeline``); the ``--trace`` flag on
  ``simulate``/``experiment``/``sweep`` records one;
* ``staticcheck`` — whole-program static analysis of this repository
  (interprocedural float-taint into the budget code, determinism of
  digest-relevant code, worker picklability/purity, plus the per-module
  lint rules), gated by the committed baseline;
* ``exact`` — solve the micro-heap game exactly (optionally budgeted);
* ``solve`` — the scaled exact solver with probe detail: canonical
  orbits, transposition tables, bracketed search, ``--jobs`` frontier
  fan-out, result caching and ``solver.*`` manifest counters;
* ``absolute`` — the Theorem-1 corollary for B-bounded managers;
* ``verify`` — re-run every reproduction check in one pass;
* ``managers`` / ``programs`` — list what is available.

Everything prints to stdout; exit code 0 unless inputs are invalid or a
bound is violated (a reproduction failure is an error by design).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .adversary.catalog import make_program, program_names
from .analysis import (
    experiment_table,
    figure1_series,
    figure2_series,
    figure3_series,
    figure_table,
    pf_experiment,
    render_figure,
    robson_experiment,
    upper_bound_experiment,
)
from .analysis.heapmap import render_heap
from .core.absolute import lower_bound_absolute
from .core.envelope import envelope
from .core.params import BoundParams
from .core.theorem1 import lower_bound, waste_profile
from .exact import (
    exact_waste_factor,
    minimum_heap_words,
    minimum_heap_words_budgeted,
)
from .mm.registry import create_manager, manager_names

__all__ = ["main", "build_parser"]

#: Default ``repro sweep`` grid: figure-3 style c values, all feasible
#: for P_F at the default M=8192/n=128 simulation scale (c=2 is not:
#: Stage II needs a density exponent, see theorem1.feasible_exponents).
_SWEEP_DEFAULT_GRID = (5.0, 10.0, 20.0, 50.0, 100.0)
_SWEEP_DEFAULT_MANAGERS = ("first-fit", "sliding-compactor", "theorem2")


def _params_from(args: argparse.Namespace) -> BoundParams:
    c = None if args.c in (None, 0) else float(args.c)
    return BoundParams(args.live, args.object, c)


def _add_param_flags(parser: argparse.ArgumentParser, *, default_live: int,
                     default_object: int, default_c: float | None) -> None:
    parser.add_argument(
        "--live", type=int, default=default_live,
        help=f"live-space bound M in words (default {default_live})",
    )
    parser.add_argument(
        "--object", type=int, default=default_object,
        help=f"largest object n in words, a power of two (default {default_object})",
    )
    parser.add_argument(
        "--c", type=float, default=default_c,
        help="compaction divisor c (0 or omit for no compaction)"
        if default_c is None else f"compaction divisor c (default {default_c})",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--cache-dir``: the parallel-engine knobs."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the simulation grid (default 1; "
             "0 = all available cores)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="on-disk result cache; repeated runs reuse finished points",
    )


def _add_kernel_flag(parser: argparse.ArgumentParser) -> None:
    """``--kernel``: the occupancy backend (reference or bitmap)."""
    from .heap.kernel import KERNEL_ENV_VAR, KERNEL_NAMES

    parser.add_argument(
        "--kernel", choices=KERNEL_NAMES, default=None,
        help="occupancy backend: 'bitmap' = vectorized numpy kernel, "
             "'reference' = pure-Python interval set (default: the "
             f"{KERNEL_ENV_VAR} environment variable, else reference)",
    )


def _add_trace_flag(parser: argparse.ArgumentParser,
                    default_out: str) -> None:
    """``--trace [PATH]``: span tracing with a Chrome trace export."""
    parser.add_argument(
        "--trace", nargs="?", const=default_out, default=None,
        metavar="PATH",
        help="record hierarchical spans and export a Chrome trace_event "
             f"JSON (Perfetto-loadable) to PATH (default {default_out})",
    )


def _engine_from(args: argparse.Namespace, tracer=None):
    from .parallel import ParallelEngine, default_jobs

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    return ParallelEngine(jobs=jobs, cache_dir=args.cache_dir,
                          tracer=tracer)


def _export_chrome_trace(tracer, path: str, *, trace_name: str) -> None:
    """Write a tracer's spans as a Chrome trace and say where it went."""
    import json as json_mod
    from pathlib import Path

    from .obs.trace import to_chrome_trace

    document = to_chrome_trace(tracer.spans, trace_name=trace_name)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json_mod.dumps(document) + "\n", encoding="utf-8")
    lanes = document["otherData"]["lanes"]
    print(f"trace: {len(tracer.spans)} spans across {lanes} lanes -> "
          f"{target} (open in Perfetto / chrome://tracing)")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Limitations of Partial Compaction (PLDI'13) toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    bounds = commands.add_parser("bounds", help="bounds at one point")
    _add_param_flags(bounds, default_live=1 << 28, default_object=1 << 20,
                     default_c=100.0)
    bounds.add_argument("--profile", action="store_true",
                        help="also print h(ell) for every feasible ell")

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("which", choices=("fig1", "fig2", "fig3"))
    figure.add_argument("--table", action="store_true",
                        help="print the full data table too")

    simulate = commands.add_parser("simulate", help="one program vs one manager")
    simulate.add_argument("--program", choices=program_names(), default="pf")
    simulate.add_argument("--manager", default="first-fit",
                          help=f"one of: {', '.join(manager_names())}")
    _add_param_flags(simulate, default_live=8192, default_object=128,
                     default_c=50.0)
    simulate.add_argument("--heapmap", action="store_true",
                          help="render the final heap occupancy")
    simulate.add_argument("--telemetry", metavar="DIR", default=None,
                          help="record the run (manifest.json + events.jsonl) "
                               "into DIR for `repro report`")
    simulate.add_argument("--sanitize", action="store_true",
                          help="run the paper-invariant checkers online "
                               "(exit 1 on any violation)")
    _add_kernel_flag(simulate)
    _add_trace_flag(simulate, "trace.json")

    experiment = commands.add_parser("experiment", help="grid vs the bounds")
    experiment.add_argument("which", choices=("robson", "pf", "upper"))
    _add_param_flags(experiment, default_live=8192, default_object=128,
                     default_c=50.0)
    experiment.add_argument("--telemetry", metavar="DIR", default=None,
                            help="record each grid row into DIR/<program>__"
                                 "<manager>/")
    experiment.add_argument("--sanitize", action="store_true",
                            help="run the paper-invariant checkers on every "
                                 "row (exit 1 on any violation)")
    _add_engine_flags(experiment)
    _add_kernel_flag(experiment)
    _add_trace_flag(experiment, "experiment-trace.json")

    sweep = commands.add_parser(
        "sweep",
        help="measured P_F waste over a c grid x manager family",
    )
    sweep.add_argument("--live", type=int, default=8192,
                       help="live-space bound M in words (default 8192)")
    sweep.add_argument("--object", type=int, default=128,
                       help="largest object n in words (default 128)")
    sweep.add_argument(
        "--grid", default=",".join(str(c) for c in _SWEEP_DEFAULT_GRID),
        metavar="C1,C2,...",
        help="comma-separated compaction divisors "
             f"(default {','.join(str(c) for c in _SWEEP_DEFAULT_GRID)})",
    )
    sweep.add_argument(
        "--managers", default=",".join(_SWEEP_DEFAULT_MANAGERS),
        metavar="NAME,...",
        help="comma-separated manager names "
             f"(default {','.join(_SWEEP_DEFAULT_MANAGERS)})",
    )
    sweep.add_argument("--csv", metavar="PATH", default=None,
                       help="also write the sweep as CSV to PATH")
    _add_engine_flags(sweep)
    _add_kernel_flag(sweep)
    _add_trace_flag(sweep, "sweep-trace.json")

    figures = commands.add_parser(
        "figures",
        help="export figure CSVs + the simulation sweep into a directory",
    )
    figures.add_argument("--outdir", default="figures",
                         help="output directory (default ./figures)")
    _add_engine_flags(figures)

    check = commands.add_parser(
        "check",
        help="static analysis of a recorded run (paper-invariant sanitizer)",
    )
    check.add_argument("path", help="run directory written by --telemetry, "
                                    "or a bare events.jsonl trace")
    check.add_argument("--replay", action="store_true",
                       help="additionally re-run the recorded configuration "
                            "and compare event-stream digests")
    check.add_argument("--max-violations", type=int, default=20,
                       help="violations to print before eliding (default 20)")

    trace = commands.add_parser(
        "trace",
        help="render or export a recorded span trace (trace.jsonl)",
    )
    trace.add_argument("path", help="run directory containing trace.jsonl "
                                    "(written by --telemetry with --trace), "
                                    "or a bare trace.jsonl file")
    trace.add_argument("--format", choices=("chrome", "tree", "json"),
                       default="tree",
                       help="chrome = trace_event JSON (Perfetto), "
                            "tree = self-time table, json = raw spans "
                            "(default tree)")
    trace.add_argument("--out", metavar="FILE", default=None,
                       help="write the document to FILE instead of stdout")
    trace.add_argument("--top", type=int, default=20, metavar="N",
                       help="span names shown in the tree table (default 20)")
    trace.add_argument("--timeline", action="store_true",
                       help="render the fragmentation timeline replayed "
                            "from fine alloc/free spans instead")

    report = commands.add_parser(
        "report", help="render a recorded run directory"
    )
    report.add_argument("directory", help="run directory written by "
                                          "--telemetry")
    report.add_argument("--width", type=int, default=60,
                        help="sparkline width in cells (default 60)")
    report.add_argument("--no-plot", action="store_true",
                        help="skip the full trajectory plot")

    staticcheck = commands.add_parser(
        "staticcheck",
        help="whole-program static analysis (taint/determinism/pickle + lint)",
    )
    staticcheck.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze "
             "(default: src/repro tools, as one program)",
    )
    staticcheck.add_argument("--format", choices=("text", "json", "sarif"),
                             default="text", help="report format")
    staticcheck.add_argument("--output", metavar="FILE", default=None,
                             help="write the report to FILE instead of stdout "
                                  "(a one-line summary still prints)")
    staticcheck.add_argument("--baseline", metavar="FILE", default=None,
                             help="baseline file (default: the committed "
                                  ".staticcheck-baseline.json)")
    staticcheck.add_argument("--no-baseline", action="store_true",
                             help="ignore any baseline: report everything")
    staticcheck.add_argument("--update-baseline", action="store_true",
                             help="accept current findings into the baseline "
                                  "file and exit 0; refuses to write entries "
                                  "with placeholder justifications")
    staticcheck.add_argument("--allow-unjustified", action="store_true",
                             help="with --update-baseline: write the baseline "
                                  "even if entries still carry the TODO "
                                  "justification placeholder")
    staticcheck.add_argument("--rules", metavar="NAME,...", default=None,
                             help="run only these rules/passes (names or "
                                  "rule ids, comma-separated)")
    staticcheck.add_argument("--list-rules", action="store_true",
                             help="print the rule catalog and exit")
    staticcheck.add_argument("--max-findings", type=int, default=100,
                             help="findings to print before eliding "
                                  "(text format, default 100)")
    staticcheck.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes for the module-rule "
                                  "tier (default 1; output is byte-"
                                  "identical across values)")
    staticcheck.add_argument("--cache-dir", metavar="DIR", default=None,
                             help="incremental cache directory: unchanged "
                                  "modules reuse their cached findings, so "
                                  "a warm run re-analyzes only edited files")

    exact = commands.add_parser("exact", help="micro-heap exact game value")
    exact.add_argument("--live", type=int, default=4)
    exact.add_argument("--object", type=int, default=2)
    exact.add_argument("--all-sizes", action="store_true",
                       help="allow every size, not just powers of two")
    exact.add_argument("--budget", type=int, default=None,
                       help="solve the budgeted game with B moved words")

    solve = commands.add_parser(
        "solve",
        help="scaled exact-game solver (canonical orbits, transposition "
             "tables, bracketed search, parallel frontier)",
    )
    solve.add_argument("--live", type=int, default=8,
                       help="live-space bound M in words (default 8)")
    solve.add_argument("--object", type=int, default=2,
                       help="largest object n in words (default 2)")
    solve.add_argument("--all-sizes", action="store_true",
                       help="allow every size, not just powers of two")
    solve.add_argument("--budget", type=int, default=None,
                       help="solve the budgeted game with B moved words")
    solve.add_argument("--search", choices=("auto", "gallop", "linear"),
                       default="auto",
                       help="heap-size search strategy (default auto: "
                            "formula-seeded bracket)")
    solve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for frontier expansion "
                            "(default 1; 0 = all available cores)")
    solve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="on-disk result cache; repeated solves replay "
                            "the stored value")
    solve.add_argument("--record", metavar="DIR", default=None,
                       help="write a run manifest with solver.* counters "
                            "into DIR")
    solve.add_argument("--stats", action="store_true",
                       help="print per-probe solver counters")

    absolute = commands.add_parser(
        "absolute", help="Theorem-1 corollary for a B-bounded manager"
    )
    absolute.add_argument("--live", type=int, default=1 << 28)
    absolute.add_argument("--object", type=int, default=1 << 20)
    absolute.add_argument("--budget", type=int, required=True,
                          help="absolute move budget B, in words")

    verify = commands.add_parser(
        "verify", help="re-run every reproduction check"
    )
    verify.add_argument("--fast", action="store_true",
                        help="smaller simulation scale (seconds, not minutes)")

    commands.add_parser("managers", help="list registered managers")
    commands.add_parser("programs", help="list available programs")
    return parser


def _cmd_bounds(args: argparse.Namespace) -> int:
    params = _params_from(args)
    print(f"parameters: {params.describe()}")
    if params.allows_compaction:
        result = lower_bound(params)
        print(f"theorem 1 lower bound: h = {result.waste_factor:.4f} "
              f"(ell = {result.density_exponent}) "
              f"-> heap >= {result.heap_words:.0f} words")
        if args.profile:
            for ell, h in sorted(waste_profile(params).items()):
                print(f"  h(ell={ell}) = {h:.4f}")
    env = envelope(params)
    print(f"best lower bound: {env.lower_factor:.4f} x M ({env.lower_source})")
    print(f"best upper bound: {env.upper_factor:.4f} x M ({env.upper_source})")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    series = {
        "fig1": figure1_series,
        "fig2": figure2_series,
        "fig3": figure3_series,
    }[args.which]()
    print(render_figure(series))
    if args.table:
        print()
        print(figure_table(series))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .adversary.driver import ExecutionDriver

    params = _params_from(args)
    program = make_program(args.program, params)
    manager = create_manager(args.manager, params)
    sanitizer = None
    tracer = None
    if args.trace is not None:
        from .obs.trace import Tracer

        # Single-run drill-down: fine tracing (per-alloc/free/move
        # spans with SearchStats deltas), not just run/stage spans.
        tracer = Tracer(fine=True)
    if args.sanitize:
        from .check import CheckContext, Sanitizer

        sanitizer = Sanitizer(CheckContext.from_params(
            params, program=program.name, manager=args.manager,
        ))
        sanitizer.attach_program(program)
    if args.telemetry:
        from .obs.telemetry import run_recorded

        drivers: list = []
        result = run_recorded(
            params, program, manager, args.telemetry,
            on_driver=drivers.append,
            extra_sinks=None if sanitizer is None else [sanitizer],
            tracer=tracer,
            kernel=args.kernel,
        )
        heap = drivers[0].heap
    else:
        observer = None
        if sanitizer is not None or tracer is not None:
            from .obs.events import EventBus

            observer = EventBus()
            if sanitizer is not None:
                sanitizer.attach(observer)
            if hasattr(program, "bus"):
                program.bus = observer
        driver = ExecutionDriver(params, manager, observer=observer,
                                 tracer=tracer, kernel=args.kernel)
        result = driver.run(program)
        heap = driver.heap
    print(result.summary())
    metrics = result.metrics
    print(f"utilization {metrics.utilization:.3f}, "
          f"external fragmentation {metrics.external_fragmentation:.3f}, "
          f"moves {result.move_count}")
    print(f"wall {result.wall_seconds:.4f} s, "
          f"{result.events_per_second:,.0f} events/s")
    if args.telemetry:
        print(f"telemetry written to {args.telemetry} "
              f"(render with: repro report {args.telemetry})")
    if tracer is not None:
        tracer.close_open()
        _export_chrome_trace(
            tracer, args.trace,
            trace_name=f"simulate {args.program} vs {args.manager}",
        )
    if args.heapmap:
        print(render_heap(heap))
    if sanitizer is not None:
        report = sanitizer.finish(raise_on_violation=False)
        print()
        print("sanitizer:", "clean" if report.ok else "VIOLATIONS")
        print(report.describe())
        if not report.ok:
            return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .check import check_run_directory, check_trace_file, replay_digest

    path = Path(args.path)
    try:
        if path.is_dir():
            report = check_run_directory(path)
        elif path.is_file():
            report = check_trace_file(path)
        else:
            print(f"error: no such run directory or trace: {path}",
                  file=sys.stderr)
            return 2
    except (FileNotFoundError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot load {path}: {error}", file=sys.stderr)
        return 2
    print(report.describe(max_violations=args.max_violations))
    failed = not report.ok
    if args.replay:
        if not path.is_dir():
            print("error: --replay needs a run directory (manifest.json)",
                  file=sys.stderr)
            return 2
        from .obs.export import load_manifest

        manifest = load_manifest(path)
        fresh = replay_digest(manifest)
        recorded = manifest.get("event_digest")
        if fresh is None:
            print("replay: skipped (program not reconstructible)")
        elif fresh == recorded:
            print(f"replay: deterministic (digest {fresh})")
        else:
            print(f"replay: DIGEST MISMATCH (recorded {recorded}, "
                  f"replayed {fresh})")
            failed = True
    if failed:
        print("\nFAIL: paper invariants violated", file=sys.stderr)
        return 1
    print("\nOK: all invariants hold")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as json_mod
    from pathlib import Path

    from .obs.profile import render_timeline, render_top
    from .obs.trace import read_trace, to_chrome_trace

    try:
        spans = read_trace(args.path)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not spans:
        print("error: trace is empty", file=sys.stderr)
        return 2

    if args.timeline:
        live_bound = None
        base = Path(args.path)
        manifest_dir = base if base.is_dir() else base.parent
        try:
            from .obs.export import load_manifest

            manifest = load_manifest(manifest_dir)
            live_bound = int(manifest["params"]["live_space"])
        except (FileNotFoundError, ValueError, KeyError, TypeError):
            pass  # timeline renders without the waste-factor rows
        document = render_timeline(spans, live_bound=live_bound)
    elif args.format == "chrome":
        document = json_mod.dumps(to_chrome_trace(
            spans, trace_name=str(args.path)))
    elif args.format == "json":
        document = "\n".join(json_mod.dumps(span.to_dict(), sort_keys=True)
                             for span in spans)
    else:
        document = render_top(spans, limit=args.top)

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(document + "\n", encoding="utf-8")
        print(f"wrote {out} ({len(spans)} spans)")
    else:
        print(document)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.export import load_run
    from .obs.report import render_run

    try:
        run = load_run(args.directory)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_run(run, width=args.width, plot=not args.no_plot))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .check import InvariantViolationError

    from .parallel import default_jobs

    params = _params_from(args)
    telemetry_dir = args.telemetry
    sanitize = args.sanitize
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    tracer = None
    if args.trace is not None:
        from .obs.trace import Tracer

        tracer = Tracer()
    engine_kwargs = {"jobs": jobs, "cache_dir": args.cache_dir,
                     "tracer": tracer, "kernel": args.kernel}
    try:
        if args.which == "robson":
            rows = robson_experiment(params.with_compaction(None),
                                     telemetry_dir=telemetry_dir,
                                     sanitize=sanitize, **engine_kwargs)
            bad = [r for r in rows if not r.respects_lower_bound]
        elif args.which == "pf":
            rows = pf_experiment(params, telemetry_dir=telemetry_dir,
                                 sanitize=sanitize, **engine_kwargs)
            bad = [r for r in rows if not r.respects_lower_bound]
        else:
            rows = upper_bound_experiment(params, telemetry_dir=telemetry_dir,
                                          sanitize=sanitize, **engine_kwargs)
            bad = [r for r in rows if not r.respects_upper_bound]
    except InvariantViolationError as error:
        print("SANITIZER VIOLATIONS:", file=sys.stderr)
        print(error.report.describe(), file=sys.stderr)
        return 1
    print(experiment_table(rows))
    if telemetry_dir:
        print(f"\nper-row telemetry written under {telemetry_dir}/")
    if tracer is not None:
        tracer.close_open()
        _export_chrome_trace(tracer, args.trace,
                             trace_name=f"experiment {args.which}")
    if bad:
        print(f"\nBOUND VIOLATIONS ({len(bad)}):")
        for row in bad:
            print(" ", row.result.summary())
        return 1
    print("\nall rows respect the bound")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .analysis.sweep import simulation_sweep, sweep_to_csv

    try:
        c_values = tuple(float(c) for c in args.grid.split(",") if c)
    except ValueError:
        print(f"error: bad --grid {args.grid!r} (want C1,C2,...)",
              file=sys.stderr)
        return 2
    managers = tuple(name for name in args.managers.split(",") if name)
    known = set(manager_names())
    unknown = [name for name in managers if name not in known]
    if not c_values or not managers or unknown:
        detail = (f"unknown managers: {', '.join(unknown)}" if unknown
                  else "empty --grid or --managers")
        print(f"error: {detail}", file=sys.stderr)
        return 2
    base = BoundParams(args.live, args.object)
    tracer = None
    if args.trace is not None:
        from .obs.trace import Tracer

        tracer = Tracer()
    engine = _engine_from(args, tracer=tracer)
    rows = simulation_sweep(base, c_values, managers, engine=engine,
                            kernel=args.kernel)
    csv_text = sweep_to_csv(rows, managers)
    if args.csv:
        from pathlib import Path

        path = Path(args.csv)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(csv_text + "\n", encoding="utf-8")
        print(f"wrote {path} ({len(rows)} rows)")
    else:
        print(csv_text)
    stats_obj = engine.stats
    print(f"sweep: {stats_obj.executed} simulated, "
          f"{stats_obj.cache_hits} cache hits, "
          f"{stats_obj.cache_misses} misses, "
          f"{stats_obj.cache_evictions} evicted, "
          f"jobs={stats_obj.jobs}, {stats_obj.wall_seconds:.2f}s")
    if tracer is not None:
        tracer.close_open()
        _export_chrome_trace(tracer, args.trace, trace_name="repro sweep")
    stats = stats_obj.as_dict()
    from .heap.kernel import resolve_kernel

    print("BENCH_JSON " + json.dumps({
        "name": "repro_sweep",
        "params": {
            "live": args.live, "object": args.object,
            "grid": list(c_values), "managers": list(managers),
            "kernel": resolve_kernel(args.kernel),
        },
        "wall_s": stats["wall_seconds"],
        "results": stats,
    }, sort_keys=True))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import to_csv
    from .analysis.sweep import simulation_sweep, sweep_to_csv

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for name, series in (
        ("figure1", figure1_series()),
        ("figure2", figure2_series()),
        ("figure3", figure3_series()),
    ):
        path = outdir / f"{name}.csv"
        path.write_text(to_csv(series.header(), series.rows()) + "\n",
                        encoding="utf-8")
        print(f"wrote {path} ({len(series.x_values)} rows)")
    managers = _SWEEP_DEFAULT_MANAGERS
    engine = _engine_from(args)
    rows = simulation_sweep(
        BoundParams(8192, 128), (10.0, 20.0, 50.0, 100.0), managers,
        engine=engine,
    )
    path = outdir / "simulation_sweep.csv"
    path.write_text(sweep_to_csv(rows, managers) + "\n", encoding="utf-8")
    stats = engine.stats
    print(f"wrote {path} ({len(rows)} rows; managers: {', '.join(managers)})")
    print(f"sweep: {stats.executed} simulated, {stats.cache_hits} cached, "
          f"jobs={stats.jobs}, {stats.wall_seconds:.2f}s")
    return 0


def _cmd_staticcheck(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .staticcheck import rule_catalog, render_text, to_json, to_sarif
    from .staticcheck.baseline import (DEFAULT_BASELINE_NAME,
                                       UNJUSTIFIED_PLACEHOLDER, Baseline)
    from .staticcheck.runner import repo_root, run_staticcheck

    if args.list_rules:
        from .staticcheck.base import TIERS

        catalog = rule_catalog()
        for tier in TIERS:
            specs = [spec for spec in catalog if spec.tier == tier]
            if not specs:
                continue
            print(f"{tier} tier:")
            for spec in specs:
                ids = ", ".join(spec.rule_ids)
                print(f"  {spec.name} [{spec.kind}] ({ids})")
                print(f"      {spec.description}")
        return 0

    root = repo_root()
    paths = [Path(p) for p in args.paths] if args.paths else None
    rules = ([token for token in args.rules.split(",") if token]
             if args.rules else None)
    if rules:
        known: set[str] = set()
        for spec in rule_catalog():
            known.add(spec.name)
            known.update(spec.rule_ids)
        unknown = sorted(set(rules) - known)
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            print("available rules:", file=sys.stderr)
            for spec in rule_catalog():
                ids = ", ".join(i for i in spec.rule_ids if i != spec.name)
                extra = f" (reports: {ids})" if ids else ""
                print(f"  {spec.name}{extra}", file=sys.stderr)
            return 2
    jobs = max(1, args.jobs)
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    baseline_path = (Path(args.baseline) if args.baseline
                     else root / DEFAULT_BASELINE_NAME)
    baseline = Baseline() if args.no_baseline else None

    if args.update_baseline:
        result = run_staticcheck(paths, root=root, rules=rules,
                                 baseline=Baseline(), jobs=jobs,
                                 cache_dir=cache_dir)
        previous = Baseline.load(baseline_path)
        updated = Baseline.from_findings(result.findings, root,
                                         previous=previous)
        unjustified = updated.unjustified()
        if unjustified and not args.allow_unjustified:
            print(f"refusing to write {baseline_path}: "
                  f"{len(unjustified)} entries lack a justification "
                  f"(still {UNJUSTIFIED_PLACEHOLDER!r})", file=sys.stderr)
            for entry in unjustified:
                print(f"  {entry.rule} @ {entry.path}: {entry.message}",
                      file=sys.stderr)
            print("edit the justifications and re-run, or pass "
                  "--allow-unjustified to write the placeholders anyway",
                  file=sys.stderr)
            return 1
        updated.save(baseline_path)
        note = (" (contains unjustified placeholder entries)"
                if unjustified else "")
        print(f"wrote {baseline_path} ({len(updated.entries)} entries)"
              f"{note}; add a justification to every new entry")
        return 0

    result = run_staticcheck(paths, root=root, rules=rules,
                             baseline=baseline, baseline_path=baseline_path,
                             jobs=jobs, cache_dir=cache_dir)
    if cache_dir is not None:
        print(f"cache: {result.cache_hits} modules reused, "
              f"{result.modules_reanalyzed} re-analyzed", file=sys.stderr)
    if args.format == "text":
        document = render_text(result.findings, result.suppressed,
                               len(result.stale_entries),
                               result.files_checked, root,
                               result.wall_seconds,
                               max_findings=args.max_findings)
    elif args.format == "json":
        document = to_json(result.findings, result.suppressed,
                           len(result.stale_entries), result.files_checked,
                           root)
    else:
        document = to_sarif(result.findings, result.suppressed,
                            rule_catalog(), root)
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(document + "\n", encoding="utf-8")
        status = "FAIL" if result.findings else "OK"
        print(f"{status}: {result.files_checked} files checked, "
              f"{len(result.findings)} findings "
              f"({len(result.suppressed)} baselined) -> {out}")
    else:
        print(document)
    for entry in result.stale_entries:
        print(f"stale baseline entry: {entry.rule} @ {entry.path} "
              f"({entry.fingerprint}) — remove it", file=sys.stderr)
    return result.exit_code


def _cmd_exact(args: argparse.Namespace) -> int:
    if args.budget is not None:
        words = minimum_heap_words_budgeted(
            args.live, args.object, args.budget
        )
        print(f"exact minimum heap for M={args.live}, n={args.object}, "
              f"B={args.budget}: {words} words ({words / args.live:.4f} x M)")
        return 0
    words = minimum_heap_words(
        args.live, args.object, power_of_two_sizes=not args.all_sizes
    )
    factor = exact_waste_factor(
        args.live, args.object, power_of_two_sizes=not args.all_sizes
    )
    print(f"exact minimum heap for M={args.live}, n={args.object}: "
          f"{words} words ({float(factor):.4f} x M)")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from .parallel.cache import RESULT_FILENAME, ResultCache
    from .parallel.engine import default_jobs
    from .parallel.tasks import (
        SolveResult,
        SolveTask,
        _write_json_atomic,
        run_solve_task,
    )

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    task = SolveTask(
        live_bound=args.live,
        max_object=args.object,
        power_of_two_sizes=not args.all_sizes,
        move_budget=args.budget,
    )
    cache = (ResultCache(args.cache_dir, result_type=SolveResult)
             if args.cache_dir is not None else None)
    result = cache.get(task) if cache is not None else None
    if result is None:
        result = run_solve_task(task, jobs=jobs, search=args.search)
        if cache is not None:
            entry = cache.entry_dir(task)
            entry.mkdir(parents=True, exist_ok=True)
            payload = result.to_dict()
            payload["cache_key"] = cache.key_for(task)
            _write_json_atomic(entry / RESULT_FILENAME, payload)
            cache.record_executions([result])
    assert isinstance(result, SolveResult)

    family = f"sizes 1..{args.object}" if args.all_sizes else "P2 sizes"
    budget_note = (f", B={args.budget}" if args.budget is not None else "")
    source = "cache" if result.from_cache else f"solved, jobs={jobs}"
    print(f"exact minimum heap for M={args.live}, n={args.object}"
          f"{budget_note} ({family}): {result.minimum_heap_words} words "
          f"[{source}, {result.wall_seconds:.3f}s]")
    probe_text = ", ".join(
        f"H={heap}:{'program' if wins else 'manager'}"
        for heap, wins in result.probes
    )
    print(f"probes: {probe_text}")
    print(f"orbits visited: {result.event_count}")
    if args.stats:
        for stats in result.stats:
            print(
                f"  H={stats['heap_words']}: orbits={stats['orbits_visited']}"
                f" edges={stats['edges']} epochs={stats['epochs']}"
                f" peak_frontier={stats['peak_frontier']}"
                f" tt_safe={stats['tt_safe_hits']}"
                f" tt_win={stats['tt_win_hits']}"
                f" wall={stats['wall_seconds']}s"
            )
    if args.record is not None:
        from .obs.export import build_manifest, write_manifest
        from .obs.metrics import MetricsRegistry
        from .obs.telemetry import record_solver_metrics

        registry = MetricsRegistry()
        record_solver_metrics(registry, list(result.stats))
        manifest = build_manifest(
            program="exact-solve",
            manager="game-solver",
            params={"live_space": args.live, "max_object": args.object,
                    "compaction_divisor": None},
            config={"task": task.to_dict(), "search": args.search,
                    "jobs": jobs},
            result={"minimum_heap_words": result.minimum_heap_words,
                    "probes": [list(pair) for pair in result.probes],
                    "from_cache": result.from_cache},
            metrics=registry.as_dict(),
            wall_seconds=result.wall_seconds,
            event_count=result.event_count,
            event_digest=result.event_digest,
        )
        path = write_manifest(args.record, manifest)
        print(f"recorded: {path}")
    return 0


def _cmd_absolute(args: argparse.Namespace) -> int:
    params = BoundParams(args.live, args.object)
    result = lower_bound_absolute(params, args.budget)
    print(f"parameters: {params.describe()}, B = {args.budget} words")
    if result.is_trivial:
        print("corollary: only the trivial bound HS >= M applies")
    else:
        print(f"corollary lower bound: h = {result.waste_factor:.4f} "
              f"(effective c = {result.effective_divisor:.2f}, "
              f"ell = {result.density_exponent}) -> heap >= "
              f"{result.heap_words:.0f} words")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "bounds":
            return _cmd_bounds(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "staticcheck":
            return _cmd_staticcheck(args)
        if args.command == "exact":
            return _cmd_exact(args)
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "absolute":
            return _cmd_absolute(args)
        if args.command == "verify":
            from .analysis.verification import verify_reproduction

            results = verify_reproduction(fast=args.fast)
            failures = 0
            for check in results:
                status = "PASS" if check.passed else "FAIL"
                print(f"[{status}] {check.name}: {check.detail}")
                failures += 0 if check.passed else 1
            print(f"\n{len(results) - failures}/{len(results)} checks passed")
            return 0 if failures == 0 else 1
        if args.command == "managers":
            print("\n".join(manager_names()))
            return 0
        if args.command == "programs":
            print("\n".join(program_names()))
            return 0
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable: argparse enforces the command set")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
