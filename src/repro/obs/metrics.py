"""Counters, gauges and fixed-bucket histograms, plus the event collector.

The registry is deliberately tiny — the shapes allocator papers actually
report: operation counts, per-op latency distributions
(``perf_counter_ns`` deltas bucketed into :data:`LATENCY_BUCKETS_NS`)
and object/gap size distributions (power-of-two buckets, matching the
paper's size classes).  Everything serializes to plain dicts for the run
manifest.

:class:`MetricsCollector` is an :class:`~repro.obs.events.EventBus`
subscriber that maintains the standard metric set from the event stream
alone, so any instrumented component gets the same registry contents for
free.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

from .events import (
    Alloc,
    BudgetCharge,
    CompactionWindow,
    Free,
    Move,
    StageTransition,
    TelemetryEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsCollector",
    "LATENCY_BUCKETS_NS",
    "power_of_two_buckets",
]

#: Default latency buckets: 0.25us .. 1ms, roughly 1-2-5 spaced.
LATENCY_BUCKETS_NS: Tuple[int, ...] = (
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 500_000, 1_000_000,
)


def power_of_two_buckets(max_exponent: int) -> Tuple[int, ...]:
    """Upper bounds ``1, 2, 4, .., 2^max_exponent`` (size-class buckets)."""
    if max_exponent < 0:
        raise ValueError("max_exponent must be non-negative")
    return tuple(1 << e for e in range(max_exponent + 1))


class Counter:
    """A monotone event counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative — counters never go down)."""
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    def as_dict(self) -> dict:
        """JSON-ready summary."""
        return {"type": "counter", "value": self._value}


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0

    @property
    def value(self) -> float:
        """The last set value."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = value

    def as_dict(self) -> dict:
        """JSON-ready summary."""
        return {"type": "gauge", "value": self._value}


class Histogram:
    """A fixed-bucket histogram with an overflow bucket.

    ``bounds`` are inclusive upper edges in strictly increasing order: a
    recorded value lands in the first bucket whose bound is ``>=`` the
    value, or in the overflow bucket beyond the last bound.  Count, sum,
    min and max are tracked exactly regardless of bucketing.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str, bounds: Sequence[Union[int, float]]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min_value: float | None = None
        self.max_value: float | None = None

    def record(self, value: Union[int, float]) -> None:
        """Add one observation."""
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the upper bound of the bucket in
        which the ``q``-quantile observation falls (``max_value`` if it
        falls in the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for bound, bucket in zip(self.bounds, self.counts):
            running += bucket
            if running >= rank:
                return float(bound)
        return float(self.max_value if self.max_value is not None else 0.0)

    def as_dict(self) -> dict:
        """JSON-ready summary (bounds, per-bucket counts, exact stats)."""
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "total": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
        }


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A name-keyed collection of metrics with get-or-create accessors.

    Accessors raise ``TypeError`` if the name is already registered as a
    different metric type — telemetry bugs should fail loudly, not
    silently split a series.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, name: str, factory, kind: type) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, lambda: Counter(name), Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, lambda: Gauge(name), Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Sequence[Union[int, float]] = LATENCY_BUCKETS_NS
    ) -> Histogram:
        """Get or create a histogram (``bounds`` only used on creation)."""
        return self._get_or_create(name, lambda: Histogram(name, bounds), Histogram)  # type: ignore[return-value]

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        """The metric registered under ``name``, if any."""
        return self._metrics.get(name)

    def as_dict(self) -> dict:
        """Every metric's summary, keyed by name (manifest-ready)."""
        return {name: self._metrics[name].as_dict() for name in self.names()}


class MetricsCollector:
    """Bus subscriber that fills a registry with the standard metric set.

    Per-kind event counters (``events.alloc`` etc.), size histograms for
    allocations and moves (power-of-two buckets up to 1 Mi-word), the
    allocation latency histogram, and gauges tracking the budget ledger.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        size_buckets = power_of_two_buckets(20)
        self._allocs = registry.counter("events.alloc")
        self._frees = registry.counter("events.free")
        self._moves = registry.counter("events.move")
        self._windows = registry.counter("events.compaction_window")
        self._stages = registry.counter("events.stage_transition")
        self._charges = registry.counter("events.budget_charge")
        self._alloc_sizes = registry.histogram("alloc.size_words", size_buckets)
        self._move_sizes = registry.histogram("move.size_words", size_buckets)
        self._alloc_latency = registry.histogram(
            "alloc.latency_ns", LATENCY_BUCKETS_NS
        )
        self._window_words = registry.histogram(
            "compaction_window.moved_words", size_buckets
        )
        self._budget_remaining = registry.gauge("budget.remaining_words")

    def __call__(self, event: TelemetryEvent) -> None:
        """Deliver one event (the bus-subscriber interface)."""
        if isinstance(event, Alloc):
            self._allocs.inc()
            self._alloc_sizes.record(event.size)
            if event.latency_ns:
                self._alloc_latency.record(event.latency_ns)
        elif isinstance(event, Free):
            self._frees.inc()
        elif isinstance(event, Move):
            self._moves.inc()
            self._move_sizes.record(event.size)
        elif isinstance(event, CompactionWindow):
            self._windows.inc()
            self._window_words.record(event.moved_words)
        elif isinstance(event, StageTransition):
            self._stages.inc()
        elif isinstance(event, BudgetCharge):
            self._charges.inc()
            self._budget_remaining.set(event.remaining)
