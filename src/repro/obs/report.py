"""Run-report rendering: ``repro report <dir>`` lives here.

Given a recorded run (the manifest/JSONL pair of
:mod:`repro.obs.export`), renders a terminal summary: the headline
numbers, unicode sparklines for the sampled series, the reconstructed
waste-factor trajectory, and the per-stage progression table with every
:class:`~repro.obs.events.StageTransition` marker — the Stage I →
Stage II hand-off of :math:`P_F` included.

The trajectory is *reconstructed from the event stream* rather than the
sampled series: ``Alloc``/``Move`` events carry addresses, so the
high-water mark and live-word count can be replayed exactly, giving the
report event-granular waste numbers at each stage boundary even when the
sampler ran at a coarse cadence.
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import Alloc, Free, Move, StageTransition, TelemetryEvent
from .export import RunData

__all__ = [
    "sparkline",
    "replay_waste_trajectory",
    "StageRow",
    "stage_rows",
    "render_run",
]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], *, width: int = 60) -> str:
    """A one-line unicode sparkline, resampled to at most ``width`` cells.

    Resampling takes the maximum of each bin (peaks are the story in
    waste plots); a flat series renders as a line of low blocks.
    """
    if not values:
        return "(no data)"
    if width < 1:
        raise ValueError("width must be positive")
    if len(values) > width:
        binned = []
        for column in range(width):
            lo = column * len(values) // width
            hi = max(lo + 1, (column + 1) * len(values) // width)
            binned.append(max(values[lo:hi]))
        values = binned
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(values)
    cells = []
    for value in values:
        level = int((value - lo) / span * (len(_BLOCKS) - 1))
        cells.append(_BLOCKS[level])
    return "".join(cells)


@dataclass(frozen=True)
class TrajectoryPoint:
    """Replayed heap state right after one event."""

    seq: int
    high_water: int
    live_words: int


def replay_waste_trajectory(
    events: list[TelemetryEvent], *, every: int = 1
) -> list[TrajectoryPoint]:
    """Replay alloc/free/move events into a high-water/live trajectory.

    ``every`` thins the output (a point per ``every`` heap events); the
    final state is always included.
    """
    if every < 1:
        raise ValueError("every must be positive")
    points: list[TrajectoryPoint] = []
    high_water = 0
    live = 0
    seen = 0
    last: TrajectoryPoint | None = None
    for event in events:
        if isinstance(event, Alloc):
            live += event.size
            high_water = max(high_water, event.address + event.size)
        elif isinstance(event, Free):
            live -= event.size
        elif isinstance(event, Move):
            high_water = max(high_water, event.new_address + event.size)
        else:
            continue
        seen += 1
        last = TrajectoryPoint(event.seq, high_water, live)
        if seen % every == 0:
            points.append(last)
    if last is not None and (not points or points[-1] is not last):
        points.append(last)
    return points


@dataclass(frozen=True)
class StageRow:
    """One stage boundary with the replayed waste level at that instant."""

    program: str
    stage: str
    step: int
    label: str
    seq: int
    high_water: int
    live_words: int

    def waste_factor(self, live_bound: int) -> float:
        """``HS / M`` when the boundary was crossed."""
        return self.high_water / live_bound


def stage_rows(events: list[TelemetryEvent]) -> list[StageRow]:
    """Every stage transition, annotated with the replayed heap state."""
    rows: list[StageRow] = []
    high_water = 0
    live = 0
    for event in events:
        if isinstance(event, Alloc):
            live += event.size
            high_water = max(high_water, event.address + event.size)
        elif isinstance(event, Free):
            live -= event.size
        elif isinstance(event, Move):
            high_water = max(high_water, event.new_address + event.size)
        elif isinstance(event, StageTransition):
            rows.append(
                StageRow(
                    program=event.program,
                    stage=event.stage,
                    step=event.step,
                    label=event.label,
                    seq=event.seq,
                    high_water=high_water,
                    live_words=live,
                )
            )
    return rows


def _format_stage_table(rows: list[StageRow], live_bound: int) -> str:
    from ..analysis.report import format_table  # local: avoid import cycle

    header = ("stage", "step", "label", "seq", "HS (words)", "HS/M")
    body = [
        (
            row.stage,
            row.step,
            row.label or "-",
            row.seq,
            row.high_water,
            row.waste_factor(live_bound),
        )
        for row in rows
    ]
    return format_table(header, body)


def _format_placement_line(metrics: dict) -> str | None:
    """The allocator micro-profile line, or None when not recorded.

    Summarizes the ``placement.*`` counters (gap-index search traffic)
    plus the mean placement latency from the ``alloc.latency_ns``
    histogram.
    """

    def counter(name: str) -> int | None:
        entry = metrics.get(name)
        return entry.get("value") if isinstance(entry, dict) else None

    searches = counter("placement.searches")
    if searches is None:
        return None
    hits = counter("placement.index_hits") or 0
    fallbacks = counter("placement.scan_fallbacks") or 0
    examined = counter("placement.gaps_examined") or 0
    hit_pct = 100.0 * hits / searches if searches else 0.0
    per_search = examined / searches if searches else 0.0
    line = (
        f"placement: {searches} searches "
        f"({hit_pct:.1f}% index, {fallbacks} scan fallbacks), "
        f"{per_search:.2f} gaps examined/search"
    )
    latency = metrics.get("alloc.latency_ns")
    if isinstance(latency, dict) and latency.get("count"):
        mean_ns = latency.get("total", 0) / latency["count"]
        line += f", {mean_ns:,.0f} ns/alloc placement"
    return line


def _format_profile_lines(profile: dict) -> list[str]:
    """Summary lines for a manifest's ``profile`` block (may be absent)."""
    wall_ns = profile.get("wall_ns", 0)
    lanes = profile.get("lanes", [])
    lines = [
        "",
        (
            f"profile: {profile.get('span_count', 0)} spans over "
            f"{wall_ns / 1e6:.2f} ms"  # lint: float-ok
            + (f" across {len(lanes)} lanes" if len(lanes) > 1 else "")
            + (f", {profile['dropped']} dropped"
               if profile.get("dropped") else "")
        ),
    ]
    phases = profile.get("phases", [])
    stage_phases = [p for p in phases
                    if str(p.get("name", "")).startswith("stage:")]
    for phase in stage_phases:
        lines.append(
            f"  +{phase.get('start_ns', 0) / 1e6:9.2f} ms  "  # lint: float-ok
            f"{phase.get('name')} "
            f"({phase.get('duration_ns', 0) / 1e6:.2f} ms)"  # lint: float-ok
        )
    return lines


def render_run(run: RunData, *, width: int = 60, plot: bool = True) -> str:
    """The full terminal report for one recorded run.

    Degrades gracefully: manifests missing optional keys (older schema
    additions like ``profile``, or hand-trimmed manifests) and empty or
    absent ``events.jsonl`` files render a reduced report rather than
    raising.
    """
    manifest = run.manifest
    try:
        live_bound = run.live_space_bound
    except (KeyError, TypeError, ValueError):
        live_bound = 0
    result = manifest.get("result", {})
    params = manifest.get("params", {})
    lines = [
        (
            f"run: {manifest.get('program', '?')} vs "
            f"{manifest.get('manager', '?')}"
        ),
        (
            f"params: M={params.get('live_space', '?')} "
            f"n={params.get('max_object', '?')} "
            f"c={params.get('compaction_divisor', '?')}"
        ),
        (
            f"result: HS={result.get('heap_size', '?')} words "
            f"({result.get('waste_factor', float('nan')):.4f} x M), "
            f"allocs={result.get('allocation_count', '?')} "
            f"frees={result.get('free_count', '?')} "
            f"moves={result.get('move_count', '?')}"
        ),
        (
            f"timing: {manifest.get('wall_seconds', 0.0):.4f} s wall, "
            f"{manifest.get('events_per_second', 0.0):,.0f} events/s, "
            f"peak RSS {manifest.get('peak_rss_kb') or '?'} KiB, "
            f"{manifest.get('event_count', 0)} telemetry events"
        ),
    ]
    placement = _format_placement_line(manifest.get("metrics", {}))
    if placement:
        lines.append(placement)
    profile = manifest.get("profile")
    if isinstance(profile, dict):
        lines.extend(_format_profile_lines(profile))

    bound = live_bound if live_bound > 0 else 1
    samples = manifest.get("samples", [])
    if samples:
        waste = [s.get("high_water", 0) / bound for s in samples]  # lint: float-ok
        live = [float(s.get("live_words", 0)) for s in samples]
        frag = [float(s.get("external_fragmentation", 0.0)) for s in samples]
        budget = [float(s.get("budget_remaining", 0.0)) for s in samples]
        lines.append("")
        lines.append(f"sampled series ({len(samples)} points):")
        lines.append(
            f"  waste HS/M   [{min(waste):.3f}..{max(waste):.3f}] "
            + sparkline(waste, width=width)
        )
        lines.append(
            f"  live words   [{min(live):.0f}..{max(live):.0f}] "
            + sparkline(live, width=width)
        )
        lines.append(
            f"  ext. frag    [{min(frag):.3f}..{max(frag):.3f}] "
            + sparkline(frag, width=width)
        )
        lines.append(
            f"  budget left  [{min(budget):.0f}..{max(budget):.0f}] "
            + sparkline(budget, width=width)
        )

    trajectory = replay_waste_trajectory(run.events, every=1)
    rows = stage_rows(run.events)
    if trajectory and plot:
        from ..analysis.ascii_plot import render_series  # avoid import cycle

        xs = list(range(len(trajectory)))
        ys = [point.high_water / bound for point in trajectory]  # lint: float-ok
        lines.append("")
        lines.append("waste-factor trajectory (replayed from events):")
        lines.append(
            render_series(
                xs,
                {"HS/M": ys},
                width=min(72, max(16, width)),
                height=12,
                x_label="heap events",
            )
        )
    if rows:
        lines.append("")
        lines.append("stage progression:")
        lines.append(_format_stage_table(rows, bound))
    elif run.events:
        lines.append("")
        lines.append("stage progression: (no stage transitions recorded)")
    else:
        lines.append("")
        lines.append("events.jsonl missing or empty: headline numbers only")
    return "\n".join(lines)
