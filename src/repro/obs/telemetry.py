"""The telemetry facade: one object bundling bus, metrics and sampler.

:class:`Telemetry` is what callers actually hold: it owns an
:class:`~repro.obs.events.EventBus`, keeps a
:class:`~repro.obs.metrics.MetricsRegistry` fed by a
:class:`~repro.obs.metrics.MetricsCollector`, and — once bound to a
driver — a :class:`~repro.obs.sampler.HeapSampler` producing the time
series.  :func:`run_recorded` is the one-call path the CLI and the
experiment grids use: build telemetry, instrument driver + program, run,
persist a ``manifest.json`` / ``events.jsonl`` pair.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Sequence, Union

from .events import EventBus
from .export import (
    EVENTS_FILENAME,
    JsonlEventWriter,
    build_manifest,
    write_manifest,
)
from .metrics import MetricsCollector, MetricsRegistry
from .sampler import HeapSampler
from .trace import TRACE_FILENAME, Tracer, active_tracer, write_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..adversary.base import AdversaryProgram
    from ..adversary.driver import ExecutionDriver, ExecutionResult
    from ..core.params import BoundParams
    from ..mm.base import MemoryManager

__all__ = [
    "Telemetry",
    "run_recorded",
    "record_placement_metrics",
    "record_solver_metrics",
    "DEFAULT_SAMPLE_EVERY",
]

#: Default sampling cadence (bus events between heap snapshots).
DEFAULT_SAMPLE_EVERY = 256


def _stream_digest(writer: JsonlEventWriter) -> str:
    """Canonical digest of the buffered stream (lazy import: obs must
    not depend on check at module load)."""
    from ..check.determinism import event_stream_digest

    return event_stream_digest(writer.events)


class Telemetry:
    """Bus + metrics + (once bound) sampler, wired together.

    Create one per execution, pass ``telemetry.bus`` as the driver's
    ``observer=`` and the program's ``bus=``, then call :meth:`bind`
    with the driver so the sampler can snapshot its heap and budget.
    """

    def __init__(self, *, sample_every: int = DEFAULT_SAMPLE_EVERY) -> None:
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.collector = MetricsCollector(self.registry)
        self.bus.subscribe(self.collector)
        self.sample_every = sample_every
        self.sampler: HeapSampler | None = None

    def bind(self, driver: "ExecutionDriver") -> "Telemetry":
        """Attach the heap sampler to a constructed driver; returns self."""
        if self.sampler is not None:
            raise ValueError("telemetry already bound to a driver")
        self.sampler = HeapSampler(
            driver.heap,
            driver.budget,
            every=self.sample_every,
            live_bound=driver.params.live_space,
        )
        self.bus.subscribe(self.sampler)
        return self

    def instrument_program(self, program: "AdversaryProgram") -> None:
        """Point the program's telemetry at this bus, if it has the hook.

        Programs advertise the hook as a ``bus`` attribute
        (:class:`~repro.adversary.pf_program.PFProgram` and
        :class:`~repro.adversary.robson_program.RobsonProgram` emit
        :class:`~repro.obs.events.StageTransition` through it); benign
        workloads simply lack the attribute and stay uninstrumented.
        """
        if hasattr(program, "bus"):
            program.bus = self.bus

    def samples_as_dicts(self) -> list[dict]:
        """The sampled series (empty before :meth:`bind` / any samples)."""
        return self.sampler.to_dicts() if self.sampler is not None else []


def record_placement_metrics(
    registry: MetricsRegistry, driver: "ExecutionDriver"
) -> None:
    """Lift the heap's placement-search counters into ``registry``.

    The :class:`~repro.heap.gap_index.SearchStats` live on the interval
    set (out-of-band: they never enter the event stream, so digests stay
    identical whether searches hit the index or the naive scan).  This
    copies them into ``placement.*`` counters so manifests and
    ``repro report`` surface them.
    """
    stats = driver.heap.occupied.search_stats
    for name, value in stats.as_dict().items():
        registry.counter(f"placement.{name}").inc(value)


#: Per-probe exact-solver counters lifted into ``solver.*`` metrics.
_SOLVER_COUNTER_KEYS = (
    "orbits_visited",
    "p_orbits",
    "q_orbits",
    "raw_successors",
    "edges",
    "epochs",
    "tt_safe_hits",
    "tt_win_hits",
    "winning_orbits",
    "safe_orbits",
)


def record_solver_metrics(
    registry: MetricsRegistry, stats_dicts: "Sequence[dict]"
) -> None:
    """Lift exact-solver probe counters into ``solver.*`` metrics.

    ``stats_dicts`` is a sequence of
    :meth:`repro.exact.solver.SolveStats.as_dict` records (one per heap
    size probed — the shape both a live ``GameSolver.history`` and a
    cached :class:`~repro.parallel.tasks.SolveResult` provide).
    Counters accumulate across probes; ``solver.peak_frontier`` is a
    gauge holding the widest frontier any probe reached, and
    ``solver.probes`` counts the solves themselves.
    """
    peak = registry.gauge("solver.peak_frontier")
    for stats in stats_dicts:
        registry.counter("solver.probes").inc()
        for key in _SOLVER_COUNTER_KEYS:
            registry.counter(f"solver.{key}").inc(int(stats.get(key, 0)))
        peak.set(max(peak.value, int(stats.get("peak_frontier", 0))))


def run_recorded(
    params: "BoundParams",
    program: "AdversaryProgram",
    manager: "MemoryManager",
    directory: Union[str, Path],
    *,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
    record_trace: bool = False,
    paranoid: bool = False,
    budget=None,
    extra_config: dict | None = None,
    on_driver=None,
    extra_sinks=None,
    tracer: Tracer | None = None,
    kernel: str | None = None,
) -> "ExecutionResult":
    """Run one fully instrumented execution and persist it.

    Writes ``manifest.json`` and ``events.jsonl`` into ``directory``
    (created if needed) and returns the
    :class:`~repro.adversary.driver.ExecutionResult` as usual.
    ``on_driver`` (if given) is called with the constructed driver
    before the run — callers needing post-run heap access (e.g. the
    CLI's ``--heapmap``) capture it there.  ``extra_sinks`` (an iterable
    of event callables, e.g. a :class:`repro.check.Sanitizer`) are
    subscribed to the bus before the run.

    ``tracer`` (when given and enabled) records hierarchical spans for
    the run; the spans land in ``trace.jsonl`` next to the events and a
    ``profile`` block is added to the manifest.  Spans are out-of-band:
    ``event_digest`` is identical with or without them.

    The manifest records ``event_digest``, the canonical SHA-256 of the
    emitted stream, so ``repro check`` can detect any later tampering
    with ``events.jsonl`` and verify deterministic replays.
    """
    from ..adversary.driver import ExecutionDriver  # avoid import cycle
    from .profile import profile_block

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)

    live_tracer = active_tracer(tracer)
    trace_mark = live_tracer.mark() if live_tracer is not None else 0

    telemetry = Telemetry(sample_every=sample_every)
    writer = JsonlEventWriter()
    telemetry.bus.subscribe(writer)
    if extra_sinks is not None:
        for sink in extra_sinks:
            telemetry.bus.subscribe(sink)
    telemetry.instrument_program(program)

    driver = ExecutionDriver(
        params,
        manager,
        record_trace=record_trace,
        paranoid=paranoid,
        budget=budget,
        observer=telemetry.bus,
        tracer=live_tracer,
        kernel=kernel,
    )
    telemetry.bind(driver)
    if on_driver is not None:
        on_driver(driver)
    result = driver.run(program)
    record_placement_metrics(telemetry.registry, driver)

    profile = None
    if live_tracer is not None:
        run_spans = live_tracer.spans_since(trace_mark)
        write_trace(target / TRACE_FILENAME, run_spans)
        profile = profile_block(run_spans, dropped=live_tracer.dropped)

    writer.write(target / EVENTS_FILENAME)
    budget_snapshot = result.budget
    config = {"sample_every": sample_every, "record_trace": record_trace,
              "paranoid": paranoid, "trace": live_tracer is not None,
              "trace_fine": live_tracer is not None and live_tracer.fine,
              "kernel": driver.kernel_name}
    if extra_config:
        config.update(extra_config)
    manifest = build_manifest(
        program=result.program_name,
        manager=result.manager_name,
        params={
            "live_space": params.live_space,
            "max_object": params.max_object,
            "compaction_divisor": params.compaction_divisor,
        },
        config=config,
        result={
            "heap_size": result.heap_size,
            "waste_factor": result.waste_factor,
            "live_peak": result.live_peak,
            "total_allocated": result.total_allocated,
            "total_freed": result.total_freed,
            "total_moved": result.total_moved,
            "allocation_count": result.allocation_count,
            "free_count": result.free_count,
            "move_count": result.move_count,
            "budget": {
                "allocated_words": budget_snapshot.allocated_words,
                "moved_words": budget_snapshot.moved_words,
                "divisor": budget_snapshot.divisor,
                "absolute_limit": budget_snapshot.absolute_limit,
                "remaining": budget_snapshot.remaining,
            },
        },
        metrics=telemetry.registry.as_dict(),
        samples=telemetry.samples_as_dicts(),
        wall_seconds=result.wall_seconds,
        events_per_second=result.events_per_second,
        event_count=telemetry.bus.event_count,
        event_digest=_stream_digest(writer),
        profile=profile,
    )
    write_manifest(target, manifest)
    return result
