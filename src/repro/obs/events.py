"""Typed telemetry events and the fan-out :class:`EventBus`.

The observability layer speaks one vocabulary: six event types covering
everything that happens during an execution —

* :class:`Alloc` / :class:`Free` — the program's requests, as served;
* :class:`Move` — one compaction move (the manager's paid-for action);
* :class:`CompactionWindow` — a closed compaction window that actually
  moved something, aggregated per allocation request;
* :class:`StageTransition` — adversary phase boundaries (Robson rounds,
  :math:`P_F` Stage I/II steps) so time series can be cut per stage;
* :class:`BudgetCharge` — every ledger mutation, with the remaining
  budget after it.

Events are mutable dataclasses whose ``seq`` field is stamped by the bus
at emission, giving every subscriber a shared monotone clock regardless
of which component produced the event.

**Null-sink fast path.** Instrumentation call sites hold an
``EventBus | None`` and guard every emission with ``if bus is not None
and bus.has_sinks:`` — an uninstrumented run pays one pointer
comparison per operation, a run with a bus but no subscribers pays one
extra truthiness check, and *neither constructs an event object*.
Call sites that cannot hoist the guard can use :meth:`EventBus.emit_lazy`
with a zero-arg factory instead.  This is what keeps the hot path
within the repo's throughput budget (see ``tools/check_overhead.py``
and ``benchmarks/bench_sanitizer_overhead.py``, which tracks the
no-sink ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, ClassVar, Dict, Type

__all__ = [
    "TelemetryEvent",
    "Alloc",
    "Free",
    "Move",
    "CompactionWindow",
    "StageTransition",
    "BudgetCharge",
    "EventBus",
    "EventSink",
    "event_from_dict",
]

#: A subscriber: any callable taking one event.
EventSink = Callable[["TelemetryEvent"], None]


@dataclass
class TelemetryEvent:
    """Base class for all telemetry events.

    ``seq`` is the bus-wide emission index (stamped by
    :meth:`EventBus.emit`; ``-1`` until then).  Subclasses set the
    ``kind`` class attribute, which keys the JSONL encoding.
    """

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """A JSON-ready flat dict (``kind`` + every field)."""
        record: dict = {"kind": self.kind}
        for field in fields(self):
            record[field.name] = getattr(self, field.name)
        return record


@dataclass
class Alloc(TelemetryEvent):
    """One served allocation request.

    ``latency_ns`` covers the manager's whole service of the request
    (compaction window + placement search), measured by the driver with
    ``perf_counter_ns`` — zero when latency capture is off.
    """

    kind: ClassVar[str] = "alloc"

    object_id: int
    size: int
    address: int
    latency_ns: int = 0
    seq: int = -1


@dataclass
class Free(TelemetryEvent):
    """One program de-allocation."""

    kind: ClassVar[str] = "free"

    object_id: int
    size: int
    address: int
    seq: int = -1


@dataclass
class Move(TelemetryEvent):
    """One compaction move (emitted before the program's move listener
    runs, so a consequent :class:`Free` always follows its move)."""

    kind: ClassVar[str] = "move"

    object_id: int
    size: int
    old_address: int
    new_address: int
    seq: int = -1


@dataclass
class CompactionWindow(TelemetryEvent):
    """A compaction window that moved at least one object.

    Aggregates the window preceding one allocation request:
    ``request_size`` is the allocation being prepared for, ``moves`` /
    ``moved_words`` what the manager spent inside the window.  Windows
    that move nothing are not emitted (they are the overwhelmingly
    common case and carry no information beyond the following
    :class:`Alloc`).
    """

    kind: ClassVar[str] = "compaction_window"

    request_size: int
    moves: int
    moved_words: int
    seq: int = -1


@dataclass
class StageTransition(TelemetryEvent):
    """An adversary phase boundary.

    ``stage`` is the program's phase name (``"I"`` / ``"II"`` for
    :math:`P_F`, ``"robson"`` for :math:`P_R`), ``step`` the round index
    within it.  ``label`` carries the human-readable boundary name; the
    Stage I → Stage II hand-off of :math:`P_F` is labelled
    ``"stage I -> stage II"`` so reports can highlight it.
    """

    kind: ClassVar[str] = "stage_transition"

    program: str
    stage: str
    step: int
    label: str = ""
    seq: int = -1


@dataclass
class BudgetCharge(TelemetryEvent):
    """One compaction-ledger mutation.

    ``reason`` is ``"alloc"`` (accrual) or ``"move"`` (spend);
    ``remaining`` the spendable budget immediately after the charge.
    """

    kind: ClassVar[str] = "budget_charge"

    reason: str
    words: int
    remaining: float
    seq: int = -1


_EVENT_TYPES: Dict[str, Type[TelemetryEvent]] = {
    cls.kind: cls
    for cls in (Alloc, Free, Move, CompactionWindow, StageTransition, BudgetCharge)
}


def event_from_dict(record: dict) -> TelemetryEvent:
    """Inverse of :meth:`TelemetryEvent.to_dict` (raises on unknown kind)."""
    payload = dict(record)
    kind = payload.pop("kind", None)
    cls = _EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown telemetry event kind {kind!r}")
    return cls(**payload)


class EventBus:
    """Synchronous fan-out of events to subscribers, in subscription order.

    The bus owns the emission counter: every event gets the next ``seq``
    at :meth:`emit` time, so events from the driver, the budget ledger
    and the adversary program interleave on one shared clock.
    """

    __slots__ = ("_sinks", "_count")

    def __init__(self) -> None:
        self._sinks: list[EventSink] = []
        self._count = 0

    @property
    def event_count(self) -> int:
        """Events emitted so far (the next event's ``seq``)."""
        return self._count

    @property
    def sink_count(self) -> int:
        """Number of current subscribers."""
        return len(self._sinks)

    @property
    def has_sinks(self) -> bool:
        """Whether anyone is listening.

        Hot loops guard event construction on this so a subscriber-less
        bus costs one attribute check per operation and zero
        allocations.  Events skipped this way are never emitted at all:
        they advance neither ``seq`` nor :attr:`event_count` (nobody
        observed them, so there is nothing to order).
        """
        return bool(self._sinks)

    def subscribe(self, sink: EventSink) -> EventSink:
        """Add a subscriber; returns it (handy for inline lambdas)."""
        self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink: EventSink) -> None:
        """Remove a subscriber (raises ``ValueError`` if absent)."""
        self._sinks.remove(sink)

    def emit(self, event: TelemetryEvent) -> None:
        """Stamp ``event.seq`` and deliver to every subscriber in order."""
        event.seq = self._count
        self._count += 1
        for sink in self._sinks:
            sink(event)

    def emit_lazy(self, factory: Callable[[], TelemetryEvent]) -> None:
        """Emit ``factory()`` only if someone is subscribed.

        The zero-allocation form for call sites that cannot hoist a
        ``has_sinks`` guard: with no subscribers the factory is never
        invoked and no event object exists.
        """
        if self._sinks:
            self.emit(factory())
