"""Unified telemetry: events, metrics, time series and run manifests.

This package is the observability substrate of the reproduction.  One
typed :class:`~repro.obs.events.EventBus` carries everything that
happens during an execution (allocations, frees, moves, compaction
windows, budget charges, adversary stage transitions); subscribers turn
the stream into :mod:`metrics <repro.obs.metrics>` (counters, gauges,
latency/size histograms), a :mod:`sampled time series
<repro.obs.sampler>`, and a persisted :mod:`manifest/JSONL pair
<repro.obs.export>` that ``repro report`` renders.

Instrumentation is strictly opt-in: every hook in the driver, the budget
ledger and the adversary programs is an ``EventBus | None`` defaulting
to ``None``, and the ``None`` path costs one pointer comparison per
operation (``tools/check_overhead.py`` enforces the ceiling).

Quickstart::

    from repro.adversary import PFProgram
    from repro.core.params import BoundParams
    from repro.mm.registry import create_manager
    from repro.obs import run_recorded

    params = BoundParams(8192, 128, 50.0)
    result = run_recorded(
        params, PFProgram(params), create_manager("first-fit", params),
        "runs/demo",
    )
    # runs/demo now holds manifest.json + events.jsonl;
    # render with: python -m repro report runs/demo
"""

from .events import (
    Alloc,
    BudgetCharge,
    CompactionWindow,
    EventBus,
    EventSink,
    Free,
    Move,
    StageTransition,
    TelemetryEvent,
    event_from_dict,
)
from .export import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    SCHEMA_VERSION,
    JsonlEventWriter,
    RunData,
    build_manifest,
    load_manifest,
    load_run,
    peak_rss_kb,
    read_events,
    write_events,
    write_manifest,
)
from .metrics import (
    LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    power_of_two_buckets,
)
from .report import render_run, replay_waste_trajectory, sparkline, stage_rows
from .profile import aggregate_spans, profile_block, render_timeline, render_top
from .sampler import HeapSampler, SamplePoint
from .telemetry import DEFAULT_SAMPLE_EVERY, Telemetry, run_recorded
from .trace import (
    TRACE_FILENAME,
    Span,
    StageSpanSink,
    Tracer,
    active_tracer,
    read_trace,
    to_chrome_trace,
    write_trace,
)

__all__ = [
    "Alloc",
    "BudgetCharge",
    "CompactionWindow",
    "Counter",
    "DEFAULT_SAMPLE_EVERY",
    "EVENTS_FILENAME",
    "EventBus",
    "EventSink",
    "Free",
    "Gauge",
    "HeapSampler",
    "Histogram",
    "JsonlEventWriter",
    "LATENCY_BUCKETS_NS",
    "MANIFEST_FILENAME",
    "MetricsCollector",
    "MetricsRegistry",
    "Move",
    "RunData",
    "SCHEMA_VERSION",
    "SamplePoint",
    "Span",
    "StageSpanSink",
    "StageTransition",
    "TRACE_FILENAME",
    "Telemetry",
    "TelemetryEvent",
    "Tracer",
    "active_tracer",
    "aggregate_spans",
    "build_manifest",
    "event_from_dict",
    "load_manifest",
    "load_run",
    "peak_rss_kb",
    "power_of_two_buckets",
    "profile_block",
    "read_events",
    "read_trace",
    "render_run",
    "render_timeline",
    "render_top",
    "replay_waste_trajectory",
    "run_recorded",
    "sparkline",
    "stage_rows",
    "to_chrome_trace",
    "write_events",
    "write_manifest",
    "write_trace",
]
