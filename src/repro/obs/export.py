"""Run persistence: JSONL event export and per-run manifests.

A recorded run is a directory with exactly two files:

* ``manifest.json`` — everything about the run *except* the raw events:
  parameters, configuration, wall time, peak RSS, end-of-run result
  numbers, the metrics registry and the sampled time series;
* ``events.jsonl`` — one :meth:`~repro.obs.events.TelemetryEvent.to_dict`
  record per line, in emission (``seq``) order.

The pair is the interchange format of the repository: ``repro report``
renders it, :meth:`repro.adversary.trace.TraceLog.to_jsonl` shares the
line encoding, and the benchmark JSON records point at it.  The schema
is versioned (:data:`SCHEMA_VERSION`) so later readers can refuse or
adapt old runs instead of misreading them.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Union

from .events import TelemetryEvent, event_from_dict

__all__ = [
    "SCHEMA_VERSION",
    "MANIFEST_FILENAME",
    "EVENTS_FILENAME",
    "JsonlEventWriter",
    "write_events",
    "read_events",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "RunData",
    "load_run",
    "peak_rss_kb",
]

#: Bump on any incompatible manifest / JSONL change.
SCHEMA_VERSION = 1

MANIFEST_FILENAME = "manifest.json"
EVENTS_FILENAME = "events.jsonl"

_PathLike = Union[str, Path]


def peak_rss_kb() -> int | None:
    """This process's peak resident set size in KiB (None if unknown).

    Uses ``resource.getrusage``; ``ru_maxrss`` is KiB on Linux and bytes
    on macOS — normalized here to KiB.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        rss //= 1024
    return int(rss)


class JsonlEventWriter:
    """Bus subscriber buffering events for one-shot JSONL export.

    Buffering (rather than streaming) keeps emission allocation-free
    apart from the dict encoding; runs in this repository are bounded by
    the simulation scale, so the buffer stays small.
    """

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def __call__(self, event: TelemetryEvent) -> None:
        """Deliver one event (the bus-subscriber interface)."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def write(self, path: _PathLike) -> Path:
        """Write every buffered event as one JSONL file; returns the path."""
        return write_events(path, self.events)


def write_events(path: _PathLike, events: list[TelemetryEvent]) -> Path:
    """Serialize ``events`` to JSONL at ``path`` (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return target


def read_events(path: _PathLike) -> list[TelemetryEvent]:
    """Parse a JSONL event file back into typed events."""
    events: list[TelemetryEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def build_manifest(
    *,
    program: str,
    manager: str,
    params: dict,
    config: dict,
    result: dict,
    metrics: dict | None = None,
    samples: list[dict] | None = None,
    wall_seconds: float = 0.0,
    events_per_second: float = 0.0,
    event_count: int = 0,
    event_digest: str | None = None,
    profile: dict | None = None,
) -> dict:
    """Assemble a schema-versioned manifest dict (see module docs).

    ``event_digest`` is the canonical event-stream digest (see
    :func:`repro.check.determinism.event_stream_digest`), which lets
    ``repro check`` detect trace tampering and replay divergence.
    ``profile`` is the optional span-profile block
    (:func:`repro.obs.profile.profile_block`) — out-of-band timing, so
    its presence never changes the digest; readers treat the key as
    optional (pre-tracing manifests simply lack it).
    """
    manifest = {
        "schema": SCHEMA_VERSION,
        "kind": "repro-run",
        "created_unix": time.time(),
        "program": program,
        "manager": manager,
        "params": params,
        "config": config,
        "wall_seconds": wall_seconds,
        "events_per_second": events_per_second,
        "event_count": event_count,
        "event_digest": event_digest,
        "peak_rss_kb": peak_rss_kb(),
        "result": result,
        "metrics": metrics or {},
        "samples": samples or [],
    }
    if profile is not None:
        manifest["profile"] = profile
    return manifest


def write_manifest(directory: _PathLike, manifest: dict) -> Path:
    """Write ``manifest.json`` into ``directory`` (created if needed)."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / MANIFEST_FILENAME
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_manifest(directory: _PathLike) -> dict:
    """Read and schema-check a run directory's manifest."""
    path = Path(directory) / MANIFEST_FILENAME
    if not path.is_file():
        raise FileNotFoundError(f"no {MANIFEST_FILENAME} in {directory}")
    manifest = json.loads(path.read_text(encoding="utf-8"))
    schema = manifest.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"manifest schema {schema!r} unsupported (expected {SCHEMA_VERSION})"
        )
    return manifest


class RunData:
    """A loaded manifest/JSONL pair."""

    def __init__(self, directory: Path, manifest: dict,
                 events: list[TelemetryEvent]) -> None:
        self.directory = directory
        self.manifest = manifest
        self.events = events

    @property
    def live_space_bound(self) -> int:
        """The run's contract bound ``M``."""
        return int(self.manifest["params"]["live_space"])

    def events_of_kind(self, kind: str) -> list[TelemetryEvent]:
        """Every event whose ``kind`` matches, in ``seq`` order."""
        return [event for event in self.events if event.kind == kind]


def load_run(directory: _PathLike) -> RunData:
    """Load a recorded run (manifest required, events optional-but-usual)."""
    base = Path(directory)
    manifest = load_manifest(base)
    events_path = base / EVENTS_FILENAME
    events = read_events(events_path) if events_path.is_file() else []
    return RunData(base, manifest, events)
