"""Hierarchical span tracing: where the time goes, per phase, per worker.

The telemetry layer (:mod:`repro.obs.events`) records *what happened* —
typed events, metrics, samples.  This module records *when and inside
what*: a :class:`Tracer` maintains a per-thread stack of open
:class:`Span` s (monotonic ``perf_counter_ns`` timing, same clock
domain across ``fork`` ed worker processes on Linux), so nested timing
scopes — a sweep containing tasks containing runs containing stages
containing allocations — come out as a tree.

Three cost tiers, mirroring the event bus's null-sink fast path:

* **no tracer** (``tracer=None`` everywhere) — one pointer comparison
  per operation, nothing else;
* **disabled tracer** (``Tracer(enabled=False)``) — call sites hoist
  ``tracer if tracer.enabled else None`` at construction, so the run
  degenerates to the no-tracer path (``tools/check_overhead.py
  --no-trace-threshold`` enforces the ceiling);
* **coarse tracing** (``fine=False``, the default) — run, stage and
  task spans only: a handful of spans per execution, which is what a
  parallel sweep ships between processes;
* **fine tracing** (``fine=True``) — additionally one span per
  allocation / free / compaction move, carrying bytes-moved and
  :class:`~repro.heap.gap_index.SearchStats` deltas.

Spans never enter the event stream: like the ``placement.*`` metrics
they ride out-of-band, so event digests — and therefore ``repro check
--replay`` — are identical with tracing on or off (digest-neutral by
construction, asserted in ``tests/obs/test_span_trace.py``).

Cross-process aggregation: a worker records spans into its own tracer,
ships them back as plain dicts (:meth:`Tracer.to_dicts` /
``TaskResult.trace_spans``), and the parent re-roots them with
:meth:`Tracer.adopt` — fresh span ids, a parent link into the local
tree, and a per-worker *lane* so the Chrome export renders one track
per worker next to the serial lane.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Union

from .events import StageTransition, TelemetryEvent

__all__ = [
    "TRACE_FILENAME",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "StageSpanSink",
    "active_tracer",
    "write_trace",
    "read_trace",
    "spans_from_dicts",
    "to_chrome_trace",
]

#: The trace file's name inside a recorded run directory.
TRACE_FILENAME = "trace.jsonl"

#: Main-process lane id (workers get 1..N at adoption time).
MAIN_LANE = 0


class Span:
    """One closed (or still-open) timing scope.

    ``start_ns`` / ``end_ns`` are ``time.perf_counter_ns`` readings
    (``end_ns == 0`` while open).  ``lane`` is the worker track the
    span renders in (0 = the main process), ``attrs`` an optional flat
    dict of JSON-able scalars.
    """

    __slots__ = ("span_id", "parent_id", "name", "start_ns", "end_ns",
                 "lane", "attrs")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 start_ns: int, end_ns: int = 0, lane: int = MAIN_LANE,
                 attrs: dict[str, Any] | None = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.lane = lane
        self.attrs = attrs

    @property
    def duration_ns(self) -> int:
        """Closed duration (0 while the span is still open)."""
        if self.end_ns <= 0:
            return 0
        return self.end_ns - self.start_ns

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready flat record (``trace.jsonl`` line schema)."""
        record: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "lane": self.lane,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        parent = record.get("parent_id")
        return cls(
            span_id=int(record["span_id"]),
            parent_id=int(parent) if parent is not None else None,
            name=str(record["name"]),
            start_ns=int(record["start_ns"]),
            end_ns=int(record.get("end_ns", 0)),
            lane=int(record.get("lane", MAIN_LANE)),
            attrs=dict(record["attrs"]) if record.get("attrs") else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, lane={self.lane}, "
                f"dur={self.duration_ns}ns)")


class _SpanContext:
    """The context manager :meth:`Tracer.span` returns (one per enter)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.end(self._span)


class _NullSpan:
    """Shared no-op span/context: what a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe hierarchical span recorder.

    Parameters
    ----------
    enabled:
        ``False`` builds a permanent no-op: :meth:`span` returns a
        shared null context, :meth:`begin` returns ``None``, nothing is
        recorded.  Call sites hoist the check (``tracer if tracer and
        tracer.enabled else None``) so the disabled path costs nothing
        per operation.
    fine:
        Record per-operation spans (alloc/free/move) too.  Off by
        default: coarse traces (run/stage/task) are what cross process
        boundaries; fine traces are for single-run drill-downs.
    lane:
        The lane id stamped on locally recorded spans.
    max_spans:
        Hard cap; spans beyond it are dropped (and counted in
        :attr:`dropped`) rather than exhausting memory on a runaway
        fine trace.
    """

    def __init__(self, *, enabled: bool = True, fine: bool = False,
                 lane: int = MAIN_LANE, max_spans: int = 1_000_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.enabled = enabled
        self.fine = fine
        self.lane = lane
        self.max_spans = max_spans
        self.spans: list[Span] = []
        #: Spans discarded after :attr:`max_spans` was reached.
        self.dropped = 0
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._clock = time.perf_counter_ns

    # Recording ---------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost open span on this thread (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs: Any) -> Any:
        """A context manager timing one scope::

            with tracer.span("compact", bytes=n):
                ...

        Disabled tracers return a shared no-op context, so guards are
        optional (but hot paths should still hoist them).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, self.begin_unchecked(name, attrs or None))

    def begin(self, name: str, **attrs: Any) -> Span | None:
        """Open a span imperatively (``None`` when disabled).

        Pair with :meth:`end`; the event-driven call sites (stage
        boundaries arriving on the bus) cannot use ``with`` blocks.
        """
        if not self.enabled:
            return None
        return self.begin_unchecked(name, attrs or None)

    def begin_unchecked(self, name: str,
                        attrs: dict[str, Any] | None = None) -> Span:
        """:meth:`begin` minus the enabled check (caller hoisted it)."""
        span = Span(
            span_id=next(self._ids),
            parent_id=(self.current.span_id
                       if self.current is not None else None),
            name=name,
            start_ns=self._clock(),
            lane=self.lane,
            attrs=attrs,
        )
        self._stack().append(span)
        return span

    def end(self, span: Span | None) -> None:
        """Close a span opened by :meth:`begin` (tolerates ``None``)."""
        if span is None:
            return
        span.end_ns = self._clock()
        stack = self._stack()
        # Normal case: LIFO discipline.  Out-of-order ends (a stage
        # span closed while a fine span is open) unwind to the span.
        if span in stack:
            while stack:
                popped = stack.pop()
                if popped is span:
                    break
        self._record(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return
            self.spans.append(span)

    def close_open(self) -> None:
        """Close every span still open on this thread (teardown path)."""
        stack = self._stack()
        while stack:
            span = stack[-1]
            span.end_ns = self._clock()
            stack.pop()
            self._record(span)

    # Bookkeeping -------------------------------------------------------------

    def mark(self) -> int:
        """The current recorded-span count (pair with :meth:`spans_since`)."""
        return len(self.spans)

    def spans_since(self, mark: int) -> list[Span]:
        """Spans recorded after a previous :meth:`mark` call."""
        return self.spans[mark:]

    # Cross-process adoption --------------------------------------------------

    def adopt(self, records: Iterable[Mapping[str, Any]], *, lane: int,
              parent: Span | None = None) -> list[Span]:
        """Re-root foreign spans (a worker's ``to_dicts()``) locally.

        Every adopted span gets a fresh id, the given ``lane``, and —
        for the foreign trace's own roots — ``parent`` as its parent,
        so a worker's whole tree hangs beneath the local task span.
        Timestamps are kept verbatim: ``perf_counter_ns`` is a single
        monotonic domain across forked processes on Linux, which is what
        lets serial and parallel timelines share one axis.
        """
        if not self.enabled:
            return []
        spans = [Span.from_dict(record) for record in records]
        id_map: dict[int, int] = {}
        with self._lock:
            for span in spans:
                id_map[span.span_id] = next(self._ids)
        parent_id = parent.span_id if parent is not None else None
        for span in spans:
            span.span_id = id_map[span.span_id]
            if span.parent_id is not None and span.parent_id in id_map:
                span.parent_id = id_map[span.parent_id]
            else:
                span.parent_id = parent_id
            span.lane = lane
        with self._lock:
            room = self.max_spans - len(self.spans)
            if room < len(spans):
                self.dropped += len(spans) - max(0, room)
                spans = spans[:max(0, room)]
            self.spans.extend(spans)
        return spans

    # Serialization -----------------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        """Every recorded span as a JSON/pickle-ready dict."""
        return [span.to_dict() for span in self.spans]


#: A process-wide disabled tracer, for call sites that want a tracer
#: object unconditionally.  ``Tracer`` is a declared resource class
#: (``StaticCheckConfig.resource_classes``): this binding predates any
#: pool fork, so worker-side code must construct its own tracer instead
#: of touching it — enforced by the ``fork-unsafe-resource`` rule.
NULL_TRACER = Tracer(enabled=False)


def active_tracer(tracer: "Tracer | None") -> "Tracer | None":
    """The hoisted guard: ``tracer`` if it will actually record.

    Collapses both "no tracer" and "disabled tracer" to ``None`` so hot
    loops pay exactly one pointer comparison per operation either way.
    """
    if tracer is not None and tracer.enabled:
        return tracer
    return None


class StageSpanSink:
    """Bus subscriber turning :class:`StageTransition` events into spans.

    The driver does not know the adversary's phase structure — programs
    announce boundaries on the bus.  This sink opens a ``stage:<name>``
    span at each transition and closes the previous one, giving the
    trace Stage I / Stage II (and Robson round) attribution without the
    programs knowing about tracers.  Digest-neutral: it only *listens*.
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._open: Span | None = None

    def __call__(self, event: TelemetryEvent) -> None:
        """Deliver one event (the bus-subscriber interface)."""
        if not isinstance(event, StageTransition):
            return
        if self._open is not None:
            self.tracer.end(self._open)
        self._open = self.tracer.begin(
            f"stage:{event.stage}", program=event.program,
            step=event.step, label=event.label,
        )

    def finish(self) -> None:
        """Close the trailing stage span (call after the run returns)."""
        if self._open is not None:
            self.tracer.end(self._open)
            self._open = None


# Persistence ------------------------------------------------------------------

_PathLike = Union[str, Path]


def _trace_path(path: _PathLike) -> Path:
    """Resolve a run directory or bare file to the trace file path."""
    base = Path(path)
    if base.is_dir() or base.suffix == "":
        return base / TRACE_FILENAME
    return base


def write_trace(path: _PathLike, spans: Iterable[Span]) -> Path:
    """Write spans as JSONL (one span per line) into ``path``.

    ``path`` may be a run directory (the file becomes
    ``<path>/trace.jsonl``) or an explicit file path.
    """
    target = _trace_path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
    return target


def read_trace(path: _PathLike) -> list[Span]:
    """Parse a ``trace.jsonl`` (or a run directory containing one)."""
    target = _trace_path(path)
    if not target.is_file():
        raise FileNotFoundError(f"no trace file at {target}")
    spans: list[Span] = []
    with target.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def spans_from_dicts(records: Iterable[Mapping[str, Any]]) -> list[Span]:
    """Rebuild spans from ``to_dicts()`` output (no re-rooting)."""
    return [Span.from_dict(record) for record in records]


# Chrome trace_event export ----------------------------------------------------


def to_chrome_trace(spans: Iterable[Span], *,
                    trace_name: str = "repro") -> dict[str, Any]:
    """The Chrome ``trace_event`` JSON document for a span set.

    Loads in Perfetto / ``chrome://tracing``: each lane becomes one
    "process" track (``pid`` = lane, named ``main`` / ``worker-N`` via
    metadata events), complete spans become ``"ph": "X"`` duration
    events with microsecond timestamps rebased to the earliest span.
    """
    spans = [span for span in spans if span.duration_ns > 0]
    events: list[dict[str, Any]] = []
    lanes = sorted({span.lane for span in spans})
    for lane in lanes:
        events.append({
            "ph": "M", "pid": lane, "tid": 0, "name": "process_name",
            "args": {"name": "main" if lane == MAIN_LANE
                     else f"worker-{lane}"},
        })
        events.append({
            "ph": "M", "pid": lane, "tid": 0, "name": "process_sort_index",
            "args": {"sort_index": lane},
        })
    t0 = min((span.start_ns for span in spans), default=0)
    for span in spans:
        event: dict[str, Any] = {
            "ph": "X",
            "pid": span.lane,
            "tid": 0,
            "name": span.name,
            "ts": (span.start_ns - t0) / 1e3,  # lint: float-ok
            "dur": span.duration_ns / 1e3,  # lint: float-ok
        }
        if span.attrs:
            event["args"] = dict(span.attrs)
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"name": trace_name, "lanes": len(lanes)},
    }
