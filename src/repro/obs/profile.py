"""Trace aggregation: self-time trees, manifest profile blocks, timelines.

Companion to :mod:`repro.obs.trace`: that module *records* spans, this
one answers questions about them —

* :func:`aggregate_spans` folds a span set into per-name cumulative /
  self time (self = cumulative minus the cumulative time of direct
  children), the flamegraph-style table ``repro trace --top`` prints
  via :func:`render_top`;
* :func:`profile_block` is the ``profile.*`` manifest block recorded
  next to the existing ``placement.*`` metrics: per-phase attribution a
  later reader can consume without the raw trace;
* :func:`render_timeline` replays *fine* alloc/free spans into a heap
  occupancy + waste-factor timeline over span time, rendered with the
  same sparkline machinery ``repro report`` uses;
* :func:`lane_wall_ns` sums per-lane busy time, the cross-check that a
  parallel sweep's per-task spans account for the engine's wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .report import sparkline
from .trace import Span

__all__ = [
    "SpanStats",
    "aggregate_spans",
    "render_top",
    "profile_block",
    "lane_wall_ns",
    "task_span_total_ns",
    "render_timeline",
]


@dataclass
class SpanStats:
    """Aggregate timing for one span name."""

    name: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0
    max_ns: int = 0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record (manifest ``profile.by_name`` entries)."""
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "self_ns": self.self_ns,
            "max_ns": self.max_ns,
        }


def aggregate_spans(spans: Sequence[Span]) -> dict[str, SpanStats]:
    """Per-name cumulative/self statistics over a span set.

    Self time subtracts only *direct* children, so a name's ``self_ns``
    over the whole table sums (within clock noise) to the trace's total
    busy time even when scopes nest arbitrarily deep.
    """
    by_name: dict[str, SpanStats] = {}
    child_ns: dict[int, int] = {}
    for span in spans:
        if span.parent_id is not None and span.duration_ns > 0:
            child_ns[span.parent_id] = (child_ns.get(span.parent_id, 0)
                                        + span.duration_ns)
    for span in spans:
        duration = span.duration_ns
        if duration <= 0:
            continue
        stats = by_name.get(span.name)
        if stats is None:
            stats = by_name[span.name] = SpanStats(span.name)
        stats.count += 1
        stats.total_ns += duration
        stats.self_ns += max(0, duration - child_ns.get(span.span_id, 0))
        stats.max_ns = max(stats.max_ns, duration)
    return by_name


def render_top(spans: Sequence[Span], *, limit: int = 20) -> str:
    """The ``repro trace --top`` table: hottest span names by self time."""
    table = aggregate_spans(spans)
    if not table:
        return "(no closed spans)"
    total_self = sum(stats.self_ns for stats in table.values()) or 1
    rows = sorted(table.values(), key=lambda s: s.self_ns, reverse=True)
    elided = max(0, len(rows) - limit)
    rows = rows[:limit]
    from ..analysis.report import format_table  # local: avoid import cycle

    header = ("span", "count", "total ms", "self ms", "self %", "max ms")
    body = [
        (
            stats.name,
            stats.count,
            f"{stats.total_ns / 1e6:.3f}",  # lint: float-ok
            f"{stats.self_ns / 1e6:.3f}",  # lint: float-ok
            f"{100.0 * stats.self_ns / total_self:.1f}",  # lint: float-ok
            f"{stats.max_ns / 1e6:.3f}",  # lint: float-ok
        )
        for stats in rows
    ]
    text = format_table(header, body)
    if elided:
        text += f"\n... ({elided} more span names)"
    return text


def lane_wall_ns(spans: Iterable[Span]) -> dict[int, int]:
    """Busy nanoseconds per lane, counting only each lane's root spans.

    A lane's roots are its spans with no parent *in the same lane* —
    adopted worker trees hang beneath a main-lane task span, so a
    worker lane's single root is its ``run``/``task`` span and nested
    spans are not double-counted.
    """
    spans = list(spans)
    lane_of = {span.span_id: span.lane for span in spans}
    totals: dict[int, int] = {}
    for span in spans:
        if span.duration_ns <= 0:
            continue
        parent_lane = lane_of.get(span.parent_id) if span.parent_id else None
        if parent_lane == span.lane:
            continue  # nested within the same lane: already counted
        totals[span.lane] = totals.get(span.lane, 0) + span.duration_ns
    return totals


def task_span_total_ns(spans: Iterable[Span],
                       prefix: str = "task:") -> int:
    """Summed duration of every per-task span (lane roots of a sweep)."""
    return sum(span.duration_ns for span in spans
               if span.name.startswith(prefix))


def profile_block(spans: Sequence[Span], *, dropped: int = 0) -> dict[str, Any]:
    """The manifest's ``profile`` block for one traced execution.

    Out-of-band like ``placement.*``: nothing here feeds the event
    digest.  ``phases`` lists stage spans in start order with absolute
    offsets rebased to the trace start, so a reader can reconstruct the
    per-phase timeline without the raw span file.
    """
    closed = [span for span in spans if span.duration_ns > 0]
    t0 = min((span.start_ns for span in closed), default=0)
    wall_ns = max((span.end_ns for span in closed), default=t0) - t0
    phases = [
        {
            "name": span.name,
            "start_ns": span.start_ns - t0,
            "duration_ns": span.duration_ns,
            "lane": span.lane,
            **({"attrs": span.attrs} if span.attrs else {}),
        }
        for span in sorted(closed, key=lambda s: (s.start_ns, s.span_id))
        if span.name.startswith(("stage:", "task:", "run", "engine."))
    ]
    return {
        "schema": 1,
        "span_count": len(closed),
        "dropped": dropped,
        "wall_ns": wall_ns,
        "lanes": sorted({span.lane for span in closed}),
        "by_name": {name: stats.as_dict()
                    for name, stats in sorted(aggregate_spans(closed).items())},
        "phases": phases,
    }


# Fragmentation timeline -------------------------------------------------------


@dataclass
class _TimelinePoint:
    """Heap state replayed at one fine-span boundary."""

    t_ns: int
    live_words: int
    high_water: int


@dataclass
class _Timeline:
    points: list[_TimelinePoint] = field(default_factory=list)


def _replay_fine_spans(spans: Sequence[Span]) -> _Timeline:
    """Replay ``alloc``/``free`` fine spans into occupancy over time."""
    timeline = _Timeline()
    live = 0
    high_water = 0
    moments = []
    for span in spans:
        if span.name not in ("alloc", "free") or not span.attrs:
            continue
        size = span.attrs.get("size")
        if size is None:
            continue
        moments.append((span.start_ns, span.name, int(size),
                        span.attrs.get("address")))
    moments.sort(key=lambda m: m[0])
    for t_ns, kind, size, address in moments:
        if kind == "alloc":
            live += size
            if address is not None:
                high_water = max(high_water, int(address) + size)
        else:
            live -= size
        timeline.points.append(_TimelinePoint(t_ns, live, high_water))
    return timeline


def render_timeline(spans: Sequence[Span], *, live_bound: int | None = None,
                    width: int = 60) -> str:
    """The fragmentation timeline: occupancy and waste over span time.

    Needs a *fine* trace (per-alloc/free spans carrying ``size`` and
    ``address`` attributes); coarse traces degrade to an explanatory
    message rather than raising, so ``repro trace --timeline`` is safe
    on any trace file.
    """
    timeline = _replay_fine_spans(spans)
    points = timeline.points
    if not points:
        return ("timeline: no fine alloc/free spans in this trace "
                "(record with fine tracing, e.g. `repro simulate --trace`)")
    t0, t1 = points[0].t_ns, points[-1].t_ns
    span_ms = (t1 - t0) / 1e6  # lint: float-ok
    live = [float(p.live_words) for p in points]
    hw = [float(p.high_water) for p in points]
    lines = [
        f"fragmentation timeline ({len(points)} heap events over "
        f"{span_ms:.2f} ms):",
        f"  live words   [{min(live):.0f}..{max(live):.0f}] "
        + sparkline(live, width=width),
        f"  high water   [{min(hw):.0f}..{max(hw):.0f}] "
        + sparkline(hw, width=width),
    ]
    if live_bound:
        waste = [p.high_water / live_bound for p in points]  # lint: float-ok
        occupancy = [p.live_words / live_bound for p in points]  # lint: float-ok
        lines.append(
            f"  waste HS/M   [{min(waste):.3f}..{max(waste):.3f}] "
            + sparkline(waste, width=width)
        )
        lines.append(
            f"  occupancy    [{min(occupancy):.3f}..{max(occupancy):.3f}] "
            + sparkline(occupancy, width=width)
        )
    stage_spans = [span for span in spans if span.name.startswith("stage:")]
    if stage_spans:
        lines.append("  stages:")
        for span in sorted(stage_spans, key=lambda s: s.start_ns):
            offset_ms = (span.start_ns - t0) / 1e6  # lint: float-ok
            lines.append(
                f"    +{offset_ms:9.2f} ms  {span.name} "
                f"({span.duration_ns / 1e6:.2f} ms)"  # lint: float-ok
            )
    return "\n".join(lines)
