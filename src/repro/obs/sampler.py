"""Periodic heap snapshots: the time-series leg of the telemetry layer.

:class:`HeapSampler` subscribes to an :class:`~repro.obs.events.EventBus`
and, exactly every ``every`` delivered events, captures a
:class:`SamplePoint` — the live/high-water/fragmentation state from
:func:`repro.heap.metrics.snapshot` plus the budget ledger's remaining
words.  The resulting series is what ``repro report`` and
:mod:`repro.analysis.timeline` render as "waste over time".

Unlike :class:`repro.analysis.timeline.InstrumentedManager` (a manager
wrapper counting only places/frees), the sampler sees *every* event on
the bus — moves, budget charges and stage transitions advance its clock
too — so its cadence is defined over the unified event stream.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..heap.heap import SimHeap
from ..heap.metrics import snapshot
from .events import TelemetryEvent

__all__ = ["SamplePoint", "HeapSampler"]


@dataclass(frozen=True)
class SamplePoint:
    """One instant of heap + budget state.

    ``seq`` is the bus sequence number of the event that triggered the
    sample (``-1`` for forced samples), ``event_index`` the sampler's
    own delivered-event count at capture time.
    """

    seq: int
    event_index: int
    live_words: int
    live_objects: int
    high_water: int
    free_words: int
    free_gaps: int
    largest_gap: int
    external_fragmentation: float
    budget_remaining: float

    def waste_factor(self, live_space_bound: int) -> float:
        """``HS / M`` at this instant."""
        if live_space_bound <= 0:
            raise ValueError("live_space_bound must be positive")
        return self.high_water / live_space_bound

    def to_dict(self) -> dict:
        """JSON-ready flat dict (manifest ``samples`` entries)."""
        return asdict(self)


class HeapSampler:
    """Bus subscriber producing a :class:`SamplePoint` every K events."""

    def __init__(
        self,
        heap: SimHeap,
        budget=None,
        *,
        every: int = 256,
        live_bound: int | None = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self.heap = heap
        #: Any ledger with a ``remaining`` property (duck-typed), or None.
        self.budget = budget
        self.every = every
        #: The contract bound ``M``, if known — enables waste series.
        self.live_bound = live_bound
        self.samples: list[SamplePoint] = []
        self._events = 0

    @property
    def events_seen(self) -> int:
        """Bus events delivered to this sampler so far."""
        return self._events

    def __call__(self, event: TelemetryEvent) -> None:
        """Deliver one event; samples on every ``every``-th delivery."""
        self._events += 1
        if self._events % self.every == 0:
            self.sample(seq=event.seq)

    def sample(self, *, seq: int = -1) -> SamplePoint:
        """Capture a sample now (also the automatic cadence path)."""
        metrics = snapshot(self.heap)
        remaining = float(self.budget.remaining) if self.budget is not None else 0.0
        point = SamplePoint(
            seq=seq,
            event_index=self._events,
            live_words=metrics.live_words,
            live_objects=metrics.live_objects,
            high_water=metrics.high_water,
            free_words=metrics.free_words,
            free_gaps=metrics.free_gaps,
            largest_gap=metrics.largest_gap,
            external_fragmentation=metrics.external_fragmentation,
            budget_remaining=remaining,
        )
        self.samples.append(point)
        return point

    # Series accessors --------------------------------------------------------

    def series(self, field: str) -> tuple[list[int], list[float]]:
        """(event indices, values of ``field``) over all samples."""
        xs = [point.event_index for point in self.samples]
        ys = [float(getattr(point, field)) for point in self.samples]
        return xs, ys

    def waste_series(self) -> tuple[list[int], list[float]]:
        """(event indices, HS/M) — requires ``live_bound`` to be set."""
        if self.live_bound is None:
            raise ValueError("waste series needs live_bound (the contract M)")
        xs = [point.event_index for point in self.samples]
        ys = [point.waste_factor(self.live_bound) for point in self.samples]
        return xs, ys

    def to_dicts(self) -> list[dict]:
        """Every sample as a JSON-ready dict, in capture order."""
        return [point.to_dict() for point in self.samples]
