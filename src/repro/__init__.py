"""repro — Limitations of Partial Compaction: Towards Practical Bounds.

A full reproduction of Cohen & Petrank (PLDI 2013): closed-form lower and
upper bounds on the heap size required under budget-limited ("partial")
compaction, plus a discrete heap simulator, a family of memory managers
and the paper's adversarial programs, so the bounds can be validated by
actually running the constructions.

Quickstart::

    from repro import BoundParams, MB, lower_bound

    params = BoundParams(live_space=256 * MB, max_object=1 * MB,
                         compaction_divisor=100)
    print(lower_bound(params).waste_factor)   # ~3.5

See :mod:`repro.core` for the bounds, :mod:`repro.heap` and
:mod:`repro.mm` for the simulation substrate, :mod:`repro.adversary` for
the malicious programs, and :mod:`repro.analysis` for figure
regeneration.
"""

from .core import (
    GB,
    KB,
    MB,
    PAPER_REALISTIC,
    BoundEnvelope,
    BoundParams,
    LowerBoundResult,
    UpperBoundResult,
    best_lower_bound,
    best_upper_bound,
    envelope,
    lower_bound,
    upper_bound,
    waste_profile,
)

__version__ = "1.0.0"

__all__ = [
    "BoundEnvelope",
    "BoundParams",
    "GB",
    "KB",
    "LowerBoundResult",
    "MB",
    "PAPER_REALISTIC",
    "UpperBoundResult",
    "__version__",
    "best_lower_bound",
    "best_upper_bound",
    "envelope",
    "lower_bound",
    "upper_bound",
    "waste_profile",
]
